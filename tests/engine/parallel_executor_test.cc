// Parallel-vs-serial equivalence: the morsel-driven path must produce
// results identical to the serial path — same aggregates, identical
// SelectionVector order — and, because feedback is buffered and replayed
// in range order by the coordinator, an identical post-query adaptive
// index state after a long query sequence.

#include <gtest/gtest.h>

#include <cmath>

#include "adaskip/adaptive/adaptive_zone_map.h"
#include "adaskip/engine/scan_executor.h"
#include "adaskip/workload/data_generator.h"
#include "adaskip/workload/query_generator.h"

namespace adaskip {
namespace {

std::shared_ptr<Table> MakeTestTable(DataOrder order, int64_t num_rows,
                                     uint64_t seed) {
  DataGenOptions gen;
  gen.order = order;
  gen.num_rows = num_rows;
  gen.value_range = 100000;
  gen.seed = seed;
  auto table = std::make_shared<Table>("t");
  ADASKIP_CHECK_OK(
      table->AddColumn("x", MakeColumn(GenerateData<int64_t>(gen))));
  gen.seed = seed + 1;
  gen.order = DataOrder::kUniform;
  ADASKIP_CHECK_OK(
      table->AddColumn("y", MakeColumn(GenerateData<int64_t>(gen))));
  return table;
}

/// One executor arm: its own table copy, index manager, and executor, so
/// adaptation state never leaks between the serial and parallel arms.
struct Arm {
  std::shared_ptr<Table> table;
  std::unique_ptr<IndexManager> indexes;
  std::unique_ptr<ScanExecutor> executor;

  Arm(DataOrder order, int64_t num_rows, uint64_t seed,
      const IndexOptions& index, const ExecOptions& exec) {
    table = MakeTestTable(order, num_rows, seed);
    indexes = std::make_unique<IndexManager>(table);
    ADASKIP_CHECK_OK(indexes->AttachIndex("x", index));
    executor = std::make_unique<ScanExecutor>(table, indexes.get(), exec);
  }

  const AdaptiveZoneMapT<int64_t>& adaptive() const {
    SkipIndex* index = indexes->GetIndex("x");
    ADASKIP_CHECK(index != nullptr && index->name() == "adaptive");
    return *static_cast<AdaptiveZoneMapT<int64_t>*>(index);
  }
};

/// The 100-query mixed-aggregate stream both arms replay.
std::vector<Query> MakeQueryStream(const Table& table, int count) {
  const auto& x = *table.ColumnByName("x").value()->As<int64_t>();
  QueryGenOptions qgen;
  qgen.selectivity = 0.02;
  qgen.seed = 17;
  QueryGenerator<int64_t> generator("x", x.data(), qgen);
  const AggregateKind aggregates[] = {
      AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
      AggregateKind::kMax, AggregateKind::kMaterialize};
  std::vector<Query> queries;
  for (int i = 0; i < count; ++i) {
    Query query;
    query.predicates = {generator.Next()};
    query.aggregate = aggregates[i % 5];
    queries.push_back(query);
  }
  return queries;
}

void ExpectSameScalar(double a, double b, const std::string& context) {
  if (std::isnan(a) || std::isnan(b)) {
    EXPECT_TRUE(std::isnan(a) && std::isnan(b)) << context;
  } else {
    EXPECT_EQ(a, b) << context;
  }
}

void ExpectSameResult(const QueryResult& serial, const QueryResult& parallel,
                      const std::string& context) {
  EXPECT_EQ(serial.count, parallel.count) << context;
  // Bit-identical for integer columns: every partial double sum is an
  // exactly representable integer.
  EXPECT_EQ(serial.sum, parallel.sum) << context;
  // min/max are NaN unless a min/max aggregate ran AND matched rows:
  // "equal or both NaN" (EXPECT_EQ would reject NaN==NaN).
  ExpectSameScalar(serial.min, parallel.min, context);
  ExpectSameScalar(serial.max, parallel.max, context);
  EXPECT_EQ(serial.rows, parallel.rows) << context;
}

void ExpectSameAdaptiveState(const AdaptiveZoneMapT<int64_t>& a,
                             const AdaptiveZoneMapT<int64_t>& b) {
  EXPECT_EQ(a.split_count(), b.split_count());
  EXPECT_EQ(a.merge_count(), b.merge_count());
  EXPECT_EQ(a.mode(), b.mode());
  EXPECT_EQ(a.query_count(), b.query_count());
  ASSERT_EQ(a.zones().size(), b.zones().size());
  for (size_t i = 0; i < a.zones().size(); ++i) {
    const auto& za = a.zones()[i];
    const auto& zb = b.zones()[i];
    EXPECT_EQ(za.begin, zb.begin) << "zone " << i;
    EXPECT_EQ(za.end, zb.end) << "zone " << i;
    EXPECT_EQ(za.min, zb.min) << "zone " << i;
    EXPECT_EQ(za.max, zb.max) << "zone " << i;
    EXPECT_EQ(za.last_candidate_seq, zb.last_candidate_seq) << "zone " << i;
  }
  EXPECT_TRUE(a.CheckInvariants());
  EXPECT_TRUE(b.CheckInvariants());
}

class ParallelEquivalenceTest : public ::testing::TestWithParam<int> {};

// The acceptance test: a 100-query mixed-aggregate sequence over an
// adaptive index, serial arm vs parallel arm, compared query by query and
// by final adaptive state.
TEST_P(ParallelEquivalenceTest, MatchesSerialOnAdaptiveIndex) {
  const int num_threads = GetParam();
  IndexOptions index = IndexOptions::Adaptive();
  index.adaptive.min_zone_size = 64;

  ExecOptions parallel_exec;
  parallel_exec.num_threads = num_threads;
  parallel_exec.morsel_rows = 512;  // Force real morsel fan-out.

  Arm serial(DataOrder::kClustered, 25000, 11, index, ExecOptions{});
  Arm parallel(DataOrder::kClustered, 25000, 11, index, parallel_exec);

  std::vector<Query> queries = MakeQueryStream(*serial.table, 100);
  for (size_t q = 0; q < queries.size(); ++q) {
    Result<QueryResult> rs = serial.executor->Execute(queries[q]);
    Result<QueryResult> rp = parallel.executor->Execute(queries[q]);
    ASSERT_TRUE(rs.ok()) << rs.status();
    ASSERT_TRUE(rp.ok()) << rp.status();
    ExpectSameResult(*rs, *rp,
                     "query " + std::to_string(q) + ": " +
                         queries[q].ToString());
    EXPECT_EQ(rs->stats.rows_scanned, rp->stats.rows_scanned)
        << "query " << q;
  }
  ExpectSameAdaptiveState(serial.adaptive(), parallel.adaptive());
}

// No index: the full column is one candidate range; the morsel scheduler
// splits it across workers and must agree with the serial scan.
TEST_P(ParallelEquivalenceTest, MatchesSerialOnFullScans) {
  const int num_threads = GetParam();
  auto table = MakeTestTable(DataOrder::kUniform, 30000, 23);
  ScanExecutor serial(table, nullptr);
  ExecOptions exec;
  exec.num_threads = num_threads;
  exec.morsel_rows = 1024;
  ScanExecutor parallel(table, nullptr, exec);

  std::vector<Query> queries = MakeQueryStream(*table, 25);
  for (const Query& query : queries) {
    Result<QueryResult> rs = serial.Execute(query);
    Result<QueryResult> rp = parallel.Execute(query);
    ASSERT_TRUE(rs.ok() && rp.ok());
    ExpectSameResult(*rs, *rp, query.ToString());
  }
}

// Conjunctions: intersected candidates are scanned morsel-wise too, and
// the per-column feedback replay must keep the adaptive index in
// lockstep with the serial arm.
TEST_P(ParallelEquivalenceTest, MatchesSerialOnConjunctions) {
  const int num_threads = GetParam();
  IndexOptions index = IndexOptions::Adaptive();
  index.adaptive.min_zone_size = 64;

  ExecOptions parallel_exec;
  parallel_exec.num_threads = num_threads;
  parallel_exec.morsel_rows = 512;

  Arm serial(DataOrder::kClustered, 25000, 31, index, ExecOptions{});
  Arm parallel(DataOrder::kClustered, 25000, 31, index, parallel_exec);

  const auto& x = *serial.table->ColumnByName("x").value()->As<int64_t>();
  QueryGenOptions qgen;
  qgen.selectivity = 0.1;
  qgen.seed = 37;
  QueryGenerator<int64_t> generator("x", x.data(), qgen);
  const AggregateKind aggregates[] = {
      AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
      AggregateKind::kMax, AggregateKind::kMaterialize};
  for (int i = 0; i < 50; ++i) {
    Query query;
    query.predicates = {generator.Next(),
                        Predicate::Between<int64_t>("y", 0, 60000)};
    query.aggregate = aggregates[i % 5];
    if (query.aggregate != AggregateKind::kCount &&
        query.aggregate != AggregateKind::kMaterialize) {
      query.aggregate_column = "y";
    }
    Result<QueryResult> rs = serial.executor->Execute(query);
    Result<QueryResult> rp = parallel.executor->Execute(query);
    ASSERT_TRUE(rs.ok() && rp.ok());
    ASSERT_EQ(rs->stats.index_name, "conjunction");
    ExpectSameResult(*rs, *rp, query.ToString());
  }
  ExpectSameAdaptiveState(serial.adaptive(), parallel.adaptive());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelEquivalenceTest,
                         ::testing::Values(1, 2, 7));

// Regression for the conjunction feedback gap: multi-predicate queries
// must drive adaptation on the predicate columns' indexes (splits,
// tracker updates, adapt_nanos) just like single-predicate queries do.
TEST(ConjunctionFeedbackTest, ConjunctionsDriveAdaptation) {
  IndexOptions index = IndexOptions::Adaptive();
  index.adaptive.min_zone_size = 64;
  Arm arm(DataOrder::kClustered, 25000, 41, index, ExecOptions{});
  const int64_t initial_zones = arm.adaptive().ZoneCount();

  const auto& x = *arm.table->ColumnByName("x").value()->As<int64_t>();
  QueryGenOptions qgen;
  qgen.selectivity = 0.02;
  qgen.seed = 43;
  QueryGenerator<int64_t> generator("x", x.data(), qgen);

  int64_t total_adapt_nanos = 0;
  for (int i = 0; i < 60; ++i) {
    Query query;
    // y is unindexed, so its candidate set is the full table and the
    // intersection stays aligned to x's zones — conjunction feedback is
    // zone-exact here.
    query.predicates = {generator.Next(),
                        Predicate::Between<int64_t>("y", 0, 100000)};
    query.aggregate = AggregateKind::kCount;
    Result<QueryResult> result = arm.executor->Execute(query);
    ASSERT_TRUE(result.ok()) << result.status();
    total_adapt_nanos += result->stats.adapt_nanos;
  }

  const AdaptiveZoneMapT<int64_t>& adaptive = arm.adaptive();
  EXPECT_EQ(adaptive.query_count(), 60);      // Every probe was counted.
  EXPECT_GT(adaptive.split_count(), 0);       // Wasteful zones were split.
  EXPECT_GT(adaptive.ZoneCount(), initial_zones);
  EXPECT_GT(total_adapt_nanos, 0);            // And the time was charged.
  EXPECT_TRUE(adaptive.CheckInvariants());
}

// The parallel path reports its worker count and coordinator merge time.
TEST(ParallelStatsTest, ExposesWorkerAndMergeAccounting) {
  auto table = MakeTestTable(DataOrder::kUniform, 50000, 53);
  ExecOptions exec;
  exec.num_threads = 3;
  exec.morsel_rows = 1024;
  ScanExecutor executor(table, nullptr, exec);
  Result<QueryResult> result = executor.Execute(
      Query::Count(Predicate::Between<int64_t>("x", 0, 50000)));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.parallel_workers, 3);
  EXPECT_GE(result->stats.merge_nanos, 0);
  EXPECT_GT(result->stats.scan_nanos, 0);
  // Serial executor reports no workers.
  ScanExecutor serial(table, nullptr);
  Result<QueryResult> sresult = serial.Execute(
      Query::Count(Predicate::Between<int64_t>("x", 0, 50000)));
  ASSERT_TRUE(sresult.ok());
  EXPECT_EQ(sresult->stats.parallel_workers, 0);
  EXPECT_EQ(sresult->count, result->count);
}

// Tiny queries stay serial even when threads are configured: below one
// morsel of candidate rows the fan-out cost cannot pay off.
TEST(ParallelStatsTest, SmallScansFallBackToSerial) {
  auto table = MakeTestTable(DataOrder::kUniform, 1000, 59);
  ExecOptions exec;
  exec.num_threads = 4;  // morsel_rows default (32768) >> 1000 rows.
  ScanExecutor executor(table, nullptr, exec);
  Result<QueryResult> result = executor.Execute(
      Query::Count(Predicate::Between<int64_t>("x", 0, 100000)));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.parallel_workers, 0);
}

// Changing exec options mid-stream (e.g. resizing the pool) is safe and
// keeps answers stable.
TEST(ParallelStatsTest, ReconfiguringThreadsKeepsAnswers) {
  auto table = MakeTestTable(DataOrder::kClustered, 40000, 61);
  ScanExecutor executor(table, nullptr);
  Query query = Query::Count(Predicate::Between<int64_t>("x", 10000, 60000));
  Result<QueryResult> baseline = executor.Execute(query);
  ASSERT_TRUE(baseline.ok());
  for (int threads : {2, 4, 1, 7}) {
    ExecOptions exec;
    exec.num_threads = threads;
    exec.morsel_rows = 2048;
    ASSERT_TRUE(executor.set_exec_options(exec).ok());
    Result<QueryResult> result = executor.Execute(query);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, baseline->count) << threads << " threads";
  }
}

}  // namespace
}  // namespace adaskip
