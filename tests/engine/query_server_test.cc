#include "adaskip/engine/query_server.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "adaskip/util/background_thread.h"
#include "adaskip/util/stopwatch.h"
#include "adaskip/workload/data_generator.h"

namespace adaskip {
namespace {

// A session with one indexed int64 table of `rows` rows in [0, range).
std::unique_ptr<Session> MakeSession(int64_t rows = 20000) {
  auto session = std::make_unique<Session>();
  ADASKIP_CHECK_OK(session->CreateTable("t"));
  DataGenOptions gen;
  gen.order = DataOrder::kClustered;
  gen.num_rows = rows;
  gen.value_range = rows;
  gen.seed = 7;
  ADASKIP_CHECK_OK(
      session->AddColumn<int64_t>("t", "x", GenerateData<int64_t>(gen)));
  ADASKIP_CHECK_OK(
      session->AttachIndex("t", "x", IndexOptions::Adaptive()));
  return session;
}

QuerySpec CountBetween(int64_t lo, int64_t hi) {
  return QuerySpec::Simple(
      "t", Query::Count(Predicate::Between<int64_t>("x", lo, hi)));
}

TEST(QueryServerOptionsTest, ValidateRejectsBadKnobs) {
  QueryServerOptions ok;
  EXPECT_TRUE(ValidateQueryServerOptions(ok).ok());

  QueryServerOptions bad_window;
  bad_window.batching_window_nanos = -1;
  EXPECT_EQ(ValidateQueryServerOptions(bad_window).code(),
            StatusCode::kInvalidArgument);

  QueryServerOptions bad_width;
  bad_width.max_batch_width = 0;
  EXPECT_EQ(ValidateQueryServerOptions(bad_width).code(),
            StatusCode::kInvalidArgument);

  QueryServerOptions bad_queue;
  bad_queue.max_queue = 0;
  EXPECT_EQ(ValidateQueryServerOptions(bad_queue).code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryServerTest, SubmitAndDispatchAnswersQueries) {
  auto session = MakeSession();
  QueryServerOptions options;
  options.auto_dispatch = false;
  QueryServer server(session.get(), options);

  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.Submit(CountBetween(i * 100, i * 100 + 500)));
  }
  EXPECT_EQ(server.queue_depth(), 8);
  EXPECT_EQ(server.DispatchNow(), 8);
  EXPECT_EQ(server.queue_depth(), 0);

  for (int i = 0; i < 8; ++i) {
    Result<QueryResult> result = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(result.ok()) << result.status();
    // Same answer as direct execution.
    Result<QueryResult> direct =
        session->ExecuteSpec(CountBetween(i * 100, i * 100 + 500));
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(result->count, direct->count);
    EXPECT_EQ(result->stats.shared_batch_width, 8);
  }

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted(), 8);
  EXPECT_EQ(stats.batches(), 1);
  EXPECT_EQ(stats.shared_queries(), 8);
  EXPECT_EQ(stats.shed(), 0);

  std::vector<BatchTraceEntry> batches = server.RecentBatches();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].table, "t");
  EXPECT_EQ(batches[0].width, 8);
}

TEST(QueryServerTest, DuplicatePredicatesShareOneScan) {
  auto session = MakeSession();
  QueryServerOptions options;
  options.auto_dispatch = false;
  QueryServer server(session.get(), options);

  // The dashboard pattern: every client refreshes the same panel. The
  // pass scans the predicate once; each copy still gets its own answer
  // and its own adaptation feedback.
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(server.Submit(CountBetween(4000, 5000)));
  }
  EXPECT_EQ(server.DispatchNow(), 16);

  Result<QueryResult> direct = session->ExecuteSpec(CountBetween(4000, 5000));
  ASSERT_TRUE(direct.ok());
  for (auto& future : futures) {
    Result<QueryResult> result = future.get();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->count, direct->count);
  }

  // One physical scan answered all 16 queries: the pass's kernel rows
  // are a fraction of what 16 standalone executions would have touched.
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.shared_queries(), 16);
  EXPECT_GT(stats.serial_equivalent_rows(), 0);
  EXPECT_LE(stats.kernel_rows() * 8, stats.serial_equivalent_rows());
  EXPECT_GT(stats.saved_rows(), 0);
}

TEST(QueryServerTest, OneBadQueryInABatchFailsAlone) {
  auto session = MakeSession();
  QueryServerOptions options;
  options.auto_dispatch = false;
  QueryServer server(session.get(), options);

  std::future<Result<QueryResult>> good1 =
      server.Submit(CountBetween(0, 1000));
  // Unknown column: passes spec validation (schema is the executor's
  // job), fails inside the batch.
  std::future<Result<QueryResult>> bad = server.Submit(QuerySpec::Simple(
      "t", Query::Count(Predicate::Between<int64_t>("nope", 0, 1))));
  std::future<Result<QueryResult>> good2 =
      server.Submit(CountBetween(500, 1500));

  EXPECT_EQ(server.DispatchNow(), 3);

  Result<QueryResult> r1 = good1.get();
  Result<QueryResult> rb = bad.get();
  Result<QueryResult> r2 = good2.get();
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_EQ(rb.status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(r2.ok()) << r2.status();

  Result<QueryResult> d1 = session->ExecuteSpec(CountBetween(0, 1000));
  Result<QueryResult> d2 = session->ExecuteSpec(CountBetween(500, 1500));
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_EQ(r1->count, d1->count);
  EXPECT_EQ(r2->count, d2->count);
  EXPECT_EQ(server.stats().failed_queries(), 1);
}

TEST(QueryServerTest, InvalidSpecFailsWithoutTakingAQueueSlot) {
  auto session = MakeSession();
  QueryServerOptions options;
  options.auto_dispatch = false;
  QueryServer server(session.get(), options);

  QuerySpec invalid;  // No table, no predicates.
  Result<QueryResult> result = server.Submit(std::move(invalid)).get();
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.queue_depth(), 0);
  EXPECT_EQ(server.stats().submitted(), 0);
}

TEST(QueryServerTest, ShedsWithResourceExhaustedWhenQueueIsFull) {
  auto session = MakeSession();
  QueryServerOptions options;
  options.auto_dispatch = false;
  options.max_queue = 2;
  QueryServer server(session.get(), options);

  std::future<Result<QueryResult>> a = server.Submit(CountBetween(0, 100));
  std::future<Result<QueryResult>> b = server.Submit(CountBetween(0, 200));
  std::future<Result<QueryResult>> c = server.Submit(CountBetween(0, 300));

  // The third submission resolved immediately, rejected at admission.
  Result<QueryResult> shed = c.get();
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.queue_depth(), 2);
  EXPECT_EQ(server.stats().shed(), 1);

  EXPECT_EQ(server.DispatchNow(), 2);
  EXPECT_TRUE(a.get().ok());
  EXPECT_TRUE(b.get().ok());
}

TEST(QueryServerTest, ExpiredDeadlineFailsWithoutExecuting) {
  auto session = MakeSession();
  QueryServerOptions options;
  options.auto_dispatch = false;
  QueryServer server(session.get(), options);

  QuerySpec doomed = CountBetween(0, 1000);
  doomed.deadline_nanos = 1;  // Expires effectively immediately.
  std::future<Result<QueryResult>> expired = server.Submit(doomed);
  std::future<Result<QueryResult>> alive =
      server.Submit(CountBetween(0, 1000));

  // Let the 1ns deadline pass, then dispatch.
  Stopwatch wait;
  while (wait.ElapsedNanos() < 1'000'000) {
  }
  EXPECT_EQ(server.DispatchNow(), 2);

  Result<QueryResult> dead = expired.get();
  EXPECT_EQ(dead.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(alive.get().ok());

  // The expired query never executed: only the live one reached the
  // session's workload stats.
  EXPECT_EQ(session->workload_stats().num_queries(), 1);
  EXPECT_EQ(server.stats().expired(), 1);
}

TEST(QueryServerTest, InteractiveClassDispatchesBeforeBatchClass) {
  auto session = MakeSession();
  QueryServerOptions options;
  options.auto_dispatch = false;
  QueryServer server(session.get(), options);

  QuerySpec background = CountBetween(0, 500);
  background.priority = QueryPriority::kBatch;
  std::future<Result<QueryResult>> slow1 = server.Submit(background);
  std::future<Result<QueryResult>> slow2 = server.Submit(background);

  QuerySpec urgent = CountBetween(0, 900);
  urgent.priority = QueryPriority::kInteractive;
  std::future<Result<QueryResult>> fast = server.Submit(urgent);

  // First dispatch takes ONLY the interactive query, though it arrived
  // last; the batch-class pair waits for the second dispatch.
  EXPECT_EQ(server.DispatchNow(), 1);
  ASSERT_TRUE(fast.get().ok());
  EXPECT_EQ(server.queue_depth(), 2);

  EXPECT_EQ(server.DispatchNow(), 2);
  ASSERT_TRUE(slow1.get().ok());
  ASSERT_TRUE(slow2.get().ok());
}

TEST(QueryServerTest, BatchWidthIsCapped) {
  auto session = MakeSession();
  QueryServerOptions options;
  options.auto_dispatch = false;
  options.max_batch_width = 4;
  QueryServer server(session.get(), options);

  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(server.Submit(CountBetween(i * 50, i * 50 + 500)));
  }
  EXPECT_EQ(server.DispatchNow(), 4);
  EXPECT_EQ(server.DispatchNow(), 4);
  EXPECT_EQ(server.DispatchNow(), 2);
  EXPECT_EQ(server.DispatchNow(), 0);
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(server.stats().batches(), 3);
}

TEST(QueryServerTest, SubmitAfterShutdownFailsPrecondition) {
  auto session = MakeSession();
  QueryServerOptions options;
  options.auto_dispatch = false;
  QueryServer server(session.get(), options);
  server.Shutdown();
  Result<QueryResult> result = server.Submit(CountBetween(0, 100)).get();
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryServerTest, ShutdownDrainsPendingQueries) {
  auto session = MakeSession();
  QueryServerOptions options;
  options.auto_dispatch = false;
  options.max_batch_width = 2;
  QueryServer server(session.get(), options);
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 7; ++i) {
    futures.push_back(server.Submit(CountBetween(i * 100, i * 100 + 300)));
  }
  server.Shutdown();  // Drains all 7 across 4 capped batches.
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(session->workload_stats().num_queries(), 7);
}

TEST(QueryServerTest, AutoDispatcherAnswersSubmissions) {
  auto session = MakeSession();
  QueryServerOptions options;
  options.batching_window_nanos = 100'000;
  QueryServer server(session.get(), options);

  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(server.Submit(CountBetween(i * 100, i * 100 + 400)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<QueryResult> result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GE(result->stats.shared_batch_width, 0);
  }
  EXPECT_EQ(server.stats().submitted(), 16);
}

// Many client threads hammering Submit while the dispatcher drains:
// the TSan CI tier runs this to prove the server's locking discipline.
TEST(QueryServerTest, ConcurrentSubmissionsFromManyThreads) {
  auto session = MakeSession();
  QueryServerOptions options;
  options.batching_window_nanos = 50'000;
  QueryServer server(session.get(), options);

  constexpr int kClients = 8;
  constexpr int kPerClient = 25;
  std::vector<int64_t> ok_counts(kClients, 0);
  {
    std::vector<std::unique_ptr<BackgroundThread>> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.push_back(std::make_unique<BackgroundThread>(
          [&server, &ok = ok_counts[static_cast<size_t>(c)], c] {
            for (int i = 0; i < kPerClient; ++i) {
              const int64_t lo = (c * kPerClient + i) * 37 % 15000;
              Result<QueryResult> result =
                  server.Submit(CountBetween(lo, lo + 500)).get();
              if (result.ok()) ++ok;
            }
          }));
    }
    for (auto& t : clients) t->Join();
  }
  int64_t total_ok = 0;
  for (int64_t n : ok_counts) total_ok += n;
  EXPECT_EQ(total_ok, kClients * kPerClient);
  EXPECT_EQ(server.stats().submitted(), kClients * kPerClient);
  EXPECT_EQ(server.stats().shed(), 0);
  // Everything the server admitted reached the session exactly once.
  EXPECT_EQ(session->workload_stats().num_queries(), kClients * kPerClient);
}

TEST(ServerStatsTest, RecordAccumulatesAndClearResets) {
  ServerStats stats;
  ServerStats::Sample admit;
  admit.submitted = 1;
  admit.queue_depth = 3;
  stats.Record(admit);
  ServerStats::Sample dispatch;
  dispatch.batches = 1;
  dispatch.batch_width = 4;
  dispatch.solo_queries = 1;
  dispatch.failed_queries = 2;
  dispatch.kernel_rows = 100;
  dispatch.serial_equivalent_rows = 400;
  dispatch.queue_depth = 1;
  stats.Record(dispatch);

  EXPECT_EQ(stats.submitted(), 1);
  EXPECT_EQ(stats.batches(), 1);
  EXPECT_EQ(stats.shared_queries(), 4);
  EXPECT_EQ(stats.solo_queries(), 1);
  EXPECT_EQ(stats.failed_queries(), 2);
  EXPECT_EQ(stats.saved_rows(), 300);
  EXPECT_EQ(stats.max_queue_depth(), 3);
  EXPECT_EQ(stats.batch_width_histogram().count(), 1);
  EXPECT_NE(stats.Summary().find("batches=1"), std::string::npos);

  stats.Clear();
  EXPECT_EQ(stats.submitted(), 0);
  EXPECT_EQ(stats.batches(), 0);
  EXPECT_EQ(stats.batch_width_histogram().count(), 0);
}

}  // namespace
}  // namespace adaskip
