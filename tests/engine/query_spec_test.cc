#include "adaskip/engine/query_spec.h"

#include <gtest/gtest.h>

namespace adaskip {
namespace {

TEST(QuerySpecTest, SimpleCarriesOldExecuteSemantics) {
  QuerySpec spec = QuerySpec::Simple(
      "t", Query::Count(Predicate::Between<int64_t>("x", 1, 9)));
  EXPECT_EQ(spec.table, "t");
  EXPECT_EQ(spec.deadline_nanos, 0);
  EXPECT_EQ(spec.priority, QueryPriority::kInteractive);
  EXPECT_FALSE(spec.trace_level.has_value());
  EXPECT_TRUE(ValidateQuerySpec(spec).ok());
}

TEST(QuerySpecTest, ValidateRejectsMalformedSpecs) {
  QuerySpec empty_table = QuerySpec::Simple(
      "", Query::Count(Predicate::Equal<int64_t>("x", 1)));
  EXPECT_EQ(ValidateQuerySpec(empty_table).code(),
            StatusCode::kInvalidArgument);

  QuerySpec no_predicates;
  no_predicates.table = "t";
  EXPECT_EQ(ValidateQuerySpec(no_predicates).code(),
            StatusCode::kInvalidArgument);

  QuerySpec bad_deadline = QuerySpec::Simple(
      "t", Query::Count(Predicate::Equal<int64_t>("x", 1)));
  bad_deadline.deadline_nanos = -5;
  EXPECT_EQ(ValidateQuerySpec(bad_deadline).code(),
            StatusCode::kInvalidArgument);

  QuerySpec bad_priority = QuerySpec::Simple(
      "t", Query::Count(Predicate::Equal<int64_t>("x", 1)));
  bad_priority.priority = static_cast<QueryPriority>(42);
  EXPECT_EQ(ValidateQuerySpec(bad_priority).code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryBuilderTest, FluentChainBuildsValidatedSpec) {
  Result<QuerySpec> spec =
      QueryBuilder("readings")
          .Where(Predicate::Between<double>("temp", 10.0, 20.0))
          .Count()
          .Priority(QueryPriority::kBatch)
          .Deadline(1'000'000)
          .TraceLevel(obs::TraceLevel::kSummary)
          .Build();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->table, "readings");
  ASSERT_EQ(spec->query.predicates.size(), 1u);
  EXPECT_EQ(spec->query.aggregate, AggregateKind::kCount);
  EXPECT_EQ(spec->priority, QueryPriority::kBatch);
  EXPECT_EQ(spec->deadline_nanos, 1'000'000);
  ASSERT_TRUE(spec->trace_level.has_value());
  EXPECT_EQ(*spec->trace_level, obs::TraceLevel::kSummary);
}

TEST(QueryBuilderTest, WhereAccumulatesConjunctionTerms) {
  Result<QuerySpec> spec =
      QueryBuilder("t")
          .Where(Predicate::Between<int64_t>("x", 0, 10))
          .Where(Predicate::Between<int64_t>("y", 5, 15))
          .Count()
          .Build();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->query.predicates.size(), 2u);
}

TEST(QueryBuilderTest, AggregateVariantsSetKindAndColumn) {
  Result<QuerySpec> sum = QueryBuilder("t")
                              .Where(Predicate::Equal<int64_t>("x", 1))
                              .Sum("y")
                              .Build();
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->query.aggregate, AggregateKind::kSum);
  EXPECT_EQ(sum->query.aggregate_column, "y");

  Result<QuerySpec> min = QueryBuilder("t")
                              .Where(Predicate::Equal<int64_t>("x", 1))
                              .Min()
                              .Build();
  ASSERT_TRUE(min.ok());
  EXPECT_EQ(min->query.aggregate, AggregateKind::kMin);
  EXPECT_TRUE(min->query.aggregate_column.empty());

  Result<QuerySpec> rows = QueryBuilder("t")
                               .Where(Predicate::Equal<int64_t>("x", 1))
                               .Materialize()
                               .Build();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->query.aggregate, AggregateKind::kMaterialize);
}

TEST(QueryBuilderTest, BuildRejectsEmptySpecAndStaysReusable) {
  QueryBuilder builder("t");
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
  builder.Where(Predicate::Equal<int64_t>("x", 1));
  EXPECT_TRUE(builder.Build().ok());
  // Build returns a copy; a second Build yields an equivalent spec.
  EXPECT_TRUE(builder.Build().ok());
}

TEST(QuerySpecTest, ToStringMentionsTableAndScheduling) {
  QuerySpec spec = QuerySpec::Simple(
      "ticks", Query::Count(Predicate::Between<int64_t>("px", 1, 2)));
  spec.priority = QueryPriority::kBatch;
  spec.deadline_nanos = 5'000'000;
  const std::string text = spec.ToString();
  EXPECT_NE(text.find("ticks"), std::string::npos);
  EXPECT_NE(text.find("batch"), std::string::npos);
}

}  // namespace
}  // namespace adaskip
