// The journal-replay equivalence oracle: a fresh index built over the
// same column payload, fed the live index's journal, must reach
// bit-identical structural state — zones/bounds/mode/counters for the
// adaptive zonemap, split points/imprint words/mode/counters for the
// adaptive imprints (see adaptive/journal_replay.h for the contract).

#include "adaskip/adaptive/journal_replay.h"

#include <gtest/gtest.h>

#include "adaskip/adaptive/adaptive_imprints.h"
#include "adaskip/adaptive/adaptive_zone_map.h"
#include "adaskip/workload/data_generator.h"
#include "adaskip/workload/query_generator.h"

namespace adaskip {
namespace {

constexpr std::string_view kScope = "t.x";

// Drives the full executor protocol against an index directly: probe,
// reference scan counting, per-range feedback, query completion.
template <typename Index>
void RunQueryProtocol(Index* index, const Predicate& pred,
                      std::span<const int64_t> values) {
  std::vector<RowRange> candidates;
  ProbeStats stats;
  index->Probe(pred, &candidates, &stats);
  ValueInterval<int64_t> interval = pred.ToInterval<int64_t>();
  int64_t scanned = 0;
  int64_t matched = 0;
  for (const RowRange& range : candidates) {
    int64_t matches = reference::CountMatches(values, range, interval);
    scanned += range.size();
    matched += matches;
    index->OnRangeScanned(pred, RangeFeedback{range, matches});
  }
  QueryFeedback feedback;
  feedback.rows_total = static_cast<int64_t>(values.size());
  feedback.rows_scanned = scanned;
  feedback.rows_matched = matched;
  feedback.probe = stats;
  index->OnQueryComplete(pred, feedback);
}

template <typename Index>
void RunWorkload(Index* index, std::span<const int64_t> values,
                 QueryPattern pattern, int num_queries, uint64_t seed) {
  QueryGenOptions qgen;
  qgen.pattern = pattern;
  qgen.selectivity = 0.01;
  qgen.seed = seed;
  QueryGenerator<int64_t> generator("x", values, qgen);
  for (int i = 0; i < num_queries; ++i) {
    RunQueryProtocol(index, generator.Next(), values);
  }
}

void ExpectZoneMapsEqual(const AdaptiveZoneMapT<int64_t>& live,
                         const AdaptiveZoneMapT<int64_t>& replayed) {
  EXPECT_EQ(live.mode(), replayed.mode());
  EXPECT_EQ(live.split_count(), replayed.split_count());
  EXPECT_EQ(live.merge_count(), replayed.merge_count());
  EXPECT_EQ(live.absorb_count(), replayed.absorb_count());
  EXPECT_EQ(live.num_rows(), replayed.num_rows());
  ASSERT_EQ(live.zones().size(), replayed.zones().size());
  for (size_t i = 0; i < live.zones().size(); ++i) {
    const auto& a = live.zones()[i];
    const auto& b = replayed.zones()[i];
    EXPECT_EQ(a.begin, b.begin) << "zone " << i;
    EXPECT_EQ(a.end, b.end) << "zone " << i;
    EXPECT_EQ(a.min, b.min) << "zone " << i;
    EXPECT_EQ(a.max, b.max) << "zone " << i;
    EXPECT_EQ(a.conservative, b.conservative) << "zone " << i;
  }
  EXPECT_TRUE(replayed.CheckInvariants());
}

void ExpectImprintsEqual(const AdaptiveImprintsT<int64_t>& live,
                         const AdaptiveImprintsT<int64_t>& replayed) {
  EXPECT_EQ(live.mode(), replayed.mode());
  EXPECT_EQ(live.rebin_count(), replayed.rebin_count());
  EXPECT_EQ(live.tail_extend_count(), replayed.tail_extend_count());
  EXPECT_EQ(live.imprinted_rows(), replayed.imprinted_rows());
  EXPECT_EQ(live.split_points(), replayed.split_points());
  EXPECT_EQ(live.imprint_words(), replayed.imprint_words());
}

AdaptiveOptions ZoneMapOptionsForTest() {
  AdaptiveOptions options;
  options.initial_zone_size = 0;  // Single lazy zone; refinement does it all.
  options.min_zone_size = 64;
  options.policy = SplitPolicy::kBoundary;
  options.enable_cost_model = false;
  options.enable_merging = true;
  options.merge_check_interval = 16;
  options.merge_cold_age = 32;
  return options;
}

TEST(JournalReplayTest, ZoneMapReplayMatchesLiveAfterAdaptiveWorkload) {
  TypedColumn<int64_t> column(GenerateData<int64_t>(
      {.order = DataOrder::kClustered, .num_rows = 40000, .seed = 11}));
  std::span<const int64_t> values = column.data();

  obs::EventJournalOptions journal_options;
  journal_options.capacity = 1 << 16;
  obs::EventJournal journal(std::move(journal_options));
  AdaptiveZoneMapT<int64_t> live(column, ZoneMapOptionsForTest());
  live.BindJournal(&journal, std::string(kScope));
  RunWorkload(&live, values, QueryPattern::kUniform, 256, 77);
  ASSERT_GT(live.split_count(), 0) << "workload refined nothing to replay";

  AdaptiveZoneMapT<int64_t> fresh(column, ZoneMapOptionsForTest());
  ASSERT_EQ(journal.spilled(), 0);
  Status status = ReplayJournal(journal.Snapshot(), kScope, &fresh);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectZoneMapsEqual(live, fresh);
}

TEST(JournalReplayTest, ZoneMapReplayCoversAppendsAndTailAbsorption) {
  DataGenOptions gen{
      .order = DataOrder::kClustered, .num_rows = 12000, .seed = 3};
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  // The replay twin must see the pre-append payload, so build it before
  // the column grows; appends reach it only through the journal.
  AdaptiveOptions options = ZoneMapOptionsForTest();
  options.initial_zone_size = 1024;
  obs::EventJournalOptions journal_options;
  journal_options.capacity = 1 << 16;
  obs::EventJournal journal(std::move(journal_options));
  AdaptiveZoneMapT<int64_t> live(column, options);
  AdaptiveZoneMapT<int64_t> fresh(column, options);
  live.BindJournal(&journal, std::string(kScope));

  RunWorkload(&live, column.data(), QueryPattern::kUniform, 64, 5);
  gen.seed = 4;
  gen.num_rows = 6000;
  RowRange appended = column.Append(
      std::span<const int64_t>(GenerateData<int64_t>(gen)));
  live.OnAppend(appended);
  RunWorkload(&live, column.data(), QueryPattern::kUniform, 128, 6);
  ASSERT_GT(live.absorb_count(), 0)
      << "workload never absorbed a conservative tail zone";

  Status status = ReplayJournal(journal.Snapshot(), kScope, &fresh);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectZoneMapsEqual(live, fresh);
}

TEST(JournalReplayTest, ZoneMapCostModelBypassIsReplayed) {
  // Hostile (uniform) data: the cost model should give up on skipping,
  // and the replayed twin must land in the same mode.
  TypedColumn<int64_t> column(GenerateData<int64_t>(
      {.order = DataOrder::kUniform, .num_rows = 20000, .seed = 9}));
  AdaptiveOptions options;
  options.initial_zone_size = 512;
  options.min_zone_size = 64;
  options.enable_cost_model = true;
  options.cost_model_warmup_queries = 4;
  options.enable_merging = false;

  obs::EventJournalOptions journal_options;
  journal_options.capacity = 1 << 16;
  obs::EventJournal journal(std::move(journal_options));
  AdaptiveZoneMapT<int64_t> live(column, options);
  live.BindJournal(&journal, std::string(kScope));
  RunWorkload(&live, column.data(), QueryPattern::kUniform, 96, 21);
  ASSERT_EQ(live.mode(), SkippingMode::kBypass)
      << "uniform data should have tripped the kill switch";

  AdaptiveZoneMapT<int64_t> fresh(column, options);
  Status status = ReplayJournal(journal.Snapshot(), kScope, &fresh);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectZoneMapsEqual(live, fresh);
}

TEST(JournalReplayTest, ImprintsReplayMatchesLiveAfterRebin) {
  TypedColumn<int64_t> column(GenerateData<int64_t>(
      {.order = DataOrder::kAlmostSorted, .num_rows = 30000, .seed = 13}));
  AdaptiveImprintsOptions options;
  options.rebin_check_interval = 8;
  options.rebin_cooldown = 8;
  options.rebin_false_positive_threshold = 0.0;
  options.rebin_min_skip = 1.0;  // Always eligible: force rebins.
  options.enable_cost_model = false;

  obs::EventJournalOptions journal_options;
  journal_options.capacity = 1 << 16;
  obs::EventJournal journal(std::move(journal_options));
  AdaptiveImprintsT<int64_t> live(column, options);
  live.BindJournal(&journal, std::string(kScope));
  RunWorkload(&live, column.data(), QueryPattern::kSkewed, 128, 31);
  ASSERT_GT(live.rebin_count(), 0) << "workload triggered no rebin";

  AdaptiveImprintsT<int64_t> fresh(column, options);
  Status status = ReplayJournal(journal.Snapshot(), kScope, &fresh);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectImprintsEqual(live, fresh);
}

TEST(JournalReplayTest, ImprintsReplayCoversAppendsAndTailExtension) {
  DataGenOptions gen{
      .order = DataOrder::kClustered, .num_rows = 10000, .seed = 17};
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  AdaptiveImprintsOptions options;
  options.enable_cost_model = false;

  obs::EventJournalOptions journal_options;
  journal_options.capacity = 1 << 16;
  obs::EventJournal journal(std::move(journal_options));
  AdaptiveImprintsT<int64_t> live(column, options);
  AdaptiveImprintsT<int64_t> fresh(column, options);
  live.BindJournal(&journal, std::string(kScope));

  RunWorkload(&live, column.data(), QueryPattern::kUniform, 32, 41);
  gen.seed = 18;
  gen.num_rows = 5000;
  RowRange appended = column.Append(
      std::span<const int64_t>(GenerateData<int64_t>(gen)));
  live.OnAppend(appended);
  RunWorkload(&live, column.data(), QueryPattern::kUniform, 64, 43);
  ASSERT_GT(live.tail_extend_count(), 0)
      << "workload never extended imprints over the appended tail";

  Status status = ReplayJournal(journal.Snapshot(), kScope, &fresh);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectImprintsEqual(live, fresh);
}

TEST(JournalReplayTest, SpilledPrefixPlusRetainedWindowReplays) {
  TypedColumn<int64_t> column(GenerateData<int64_t>(
      {.order = DataOrder::kClustered, .num_rows = 30000, .seed = 23}));
  std::vector<obs::JournalEvent> spilled;
  obs::EventJournalOptions journal_options;
  journal_options.capacity = 8;  // Force heavy eviction.
  journal_options.spill = [&spilled](const obs::JournalEvent& event) {
    spilled.push_back(event);
  };
  obs::EventJournal journal(std::move(journal_options));

  AdaptiveZoneMapT<int64_t> live(column, ZoneMapOptionsForTest());
  live.BindJournal(&journal, std::string(kScope));
  RunWorkload(&live, column.data(), QueryPattern::kUniform, 192, 51);
  ASSERT_GT(journal.spilled(), 0);
  ASSERT_EQ(journal.spilled(), static_cast<int64_t>(spilled.size()));

  // The full stream is the spilled prefix followed by the retained tail.
  std::vector<obs::JournalEvent> events = std::move(spilled);
  for (obs::JournalEvent& event : journal.Snapshot()) {
    events.push_back(std::move(event));
  }
  for (size_t i = 1; i < events.size(); ++i) {
    ASSERT_EQ(events[i].seq, events[i - 1].seq + 1) << "gap in the stream";
  }

  AdaptiveZoneMapT<int64_t> fresh(column, ZoneMapOptionsForTest());
  Status status = ReplayJournal(events, kScope, &fresh);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectZoneMapsEqual(live, fresh);
}

TEST(JournalReplayTest, RefusesTargetWithBoundJournal) {
  TypedColumn<int64_t> column(std::vector<int64_t>{1, 2, 3, 4});
  obs::EventJournal journal;
  AdaptiveZoneMapT<int64_t> index(column, {});
  index.BindJournal(&journal, std::string(kScope));
  Status status = ReplayJournal({}, kScope, &index);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(JournalReplayTest, ErrorsCarryTheOffendingSequenceNumber) {
  TypedColumn<int64_t> column(std::vector<int64_t>{1, 2, 3, 4, 5, 6, 7, 8});
  AdaptiveZoneMapT<int64_t> index(column, {});
  obs::JournalEvent bogus;
  bogus.seq = 41;
  bogus.kind = obs::EventKind::kZoneSplit;
  bogus.scope = std::string(kScope);
  bogus.args = {100, 200, 150};  // No such zone.
  std::vector<obs::JournalEvent> events = {bogus};
  Status status = ReplayJournal(events, kScope, &index);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("seq 41"), std::string::npos)
      << status.message();
}

TEST(JournalReplayTest, EventsFromOtherScopesAreIgnored) {
  TypedColumn<int64_t> column(GenerateData<int64_t>(
      {.order = DataOrder::kClustered, .num_rows = 20000, .seed = 29}));
  obs::EventJournalOptions journal_options;
  journal_options.capacity = 1 << 16;
  obs::EventJournal journal(std::move(journal_options));
  AdaptiveZoneMapT<int64_t> live(column, ZoneMapOptionsForTest());
  live.BindJournal(&journal, std::string(kScope));
  RunWorkload(&live, column.data(), QueryPattern::kUniform, 64, 61);
  ASSERT_GT(live.split_count(), 0);

  AdaptiveZoneMapT<int64_t> fresh(column, ZoneMapOptionsForTest());
  Status status = ReplayJournal(journal.Snapshot(), "other.scope", &fresh);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(fresh.split_count(), 0);
  EXPECT_EQ(fresh.ZoneCount(), 1);
}

}  // namespace
}  // namespace adaskip
