// Engine-level tests of the telemetry plane: the session-wired HTTP
// endpoints, the always-on flight recorder across both submission
// surfaces, slow-query trace promotion, and scraping while a query
// server is under load (the TSan target for the whole plane).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adaskip/engine/query_server.h"
#include "adaskip/engine/session.h"
#include "adaskip/util/background_thread.h"
#include "adaskip/util/socket.h"
#include "adaskip/util/thread_pool.h"
#include "adaskip/workload/data_generator.h"

namespace adaskip {
namespace {

// A session with one indexed int64 table of `rows` rows in [0, rows).
std::unique_ptr<Session> MakeSession(int64_t rows = 20000) {
  auto session = std::make_unique<Session>();
  ADASKIP_CHECK_OK(session->CreateTable("t"));
  DataGenOptions gen;
  gen.order = DataOrder::kClustered;
  gen.num_rows = rows;
  gen.value_range = rows;
  gen.seed = 7;
  ADASKIP_CHECK_OK(
      session->AddColumn<int64_t>("t", "x", GenerateData<int64_t>(gen)));
  ADASKIP_CHECK_OK(session->AttachIndex("t", "x", IndexOptions::Adaptive()));
  return session;
}

QuerySpec CountBetween(int64_t lo, int64_t hi) {
  return QuerySpec::Simple(
      "t", Query::Count(Predicate::Between<int64_t>("x", lo, hi)));
}

int StatusOf(const std::string& response) {
  if (response.size() < 12 || response.compare(0, 9, "HTTP/1.1 ") != 0) {
    return -1;
  }
  return std::atoi(response.c_str() + 9);
}

TEST(SessionTelemetryTest, StartServerWiresStockEndpoints) {
  auto session = MakeSession();
  ASSERT_TRUE(session->ExecuteSpec(CountBetween(100, 500)).ok());

  Result<int> port = session->StartTelemetryServer();
  ASSERT_TRUE(port.ok()) << port.status();
  ASSERT_GT(*port, 0);
  ASSERT_NE(session->telemetry_server(), nullptr);

  // A second server on the same session is refused.
  Result<int> second = session->StartTelemetryServer();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);

  Result<std::string> metrics = HttpGet(*port, "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(StatusOf(*metrics), 200);
  EXPECT_NE(metrics->find("# TYPE adaskip_exec_queries counter"),
            std::string::npos);
  EXPECT_NE(metrics->find("adaskip_flightrecorder_records"),
            std::string::npos);

  Result<std::string> healthz = HttpGet(*port, "/healthz");
  ASSERT_TRUE(healthz.ok()) << healthz.status();
  EXPECT_EQ(StatusOf(*healthz), 200);
  EXPECT_NE(healthz->find("\"status\":\"ok\""), std::string::npos);

  Result<std::string> indexes = HttpGet(*port, "/indexes");
  ASSERT_TRUE(indexes.ok()) << indexes.status();
  EXPECT_EQ(StatusOf(*indexes), 200);
  EXPECT_NE(indexes->find("\"table\":\"t\""), std::string::npos);
  EXPECT_NE(indexes->find("\"column\":\"x\""), std::string::npos);
  EXPECT_NE(indexes->find("\"kind\":\"adaptive\""), std::string::npos);

  Result<std::string> flights = HttpGet(*port, "/flightrecorder");
  ASSERT_TRUE(flights.ok()) << flights.status();
  EXPECT_EQ(StatusOf(*flights), 200);
  EXPECT_NE(flights->find("\"total_recorded\":1"), std::string::npos);

  Result<std::string> journal = HttpGet(*port, "/journal?n=4");
  ASSERT_TRUE(journal.ok()) << journal.status();
  EXPECT_EQ(StatusOf(*journal), 200);

  session->StopTelemetryServer();
  EXPECT_EQ(session->telemetry_server(), nullptr);
  session->StopTelemetryServer();  // Idempotent.
}

TEST(SessionTelemetryTest, FlightRecorderCapturesEveryQueryAtTraceOff) {
  auto session = MakeSession();
  for (int i = 0; i < 6; ++i) {
    Result<QueryResult> result =
        session->ExecuteSpec(CountBetween(i * 100, i * 100 + 500));
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->trace, nullptr);  // Table default is kOff.
  }

  // Every query landed in the ring despite tracing being off.
  EXPECT_EQ(session->flight_recorder().total_recorded(), 6);
  const std::vector<obs::FlightRecord> records =
      session->flight_recorder().Snapshot();
  ASSERT_EQ(records.size(), 6u);
  for (const obs::FlightRecord& record : records) {
    EXPECT_NE(record.spec_digest, 0u);
    EXPECT_GT(record.latency_nanos, 0);
    EXPECT_GT(record.rows_scanned + record.rows_skipped, 0);
    EXPECT_EQ(record.batch_seq, -1);  // Standalone submissions.
    EXPECT_EQ(record.batch_width, 1);
    EXPECT_FALSE(record.traced);
    EXPECT_EQ(record.status, StatusCode::kOk);
  }
  // Identical specs digest identically; distinct specs do not.
  EXPECT_NE(records[0].spec_digest, records[1].spec_digest);

  // A failed query is recorded too, with its status code.
  EXPECT_FALSE(session
                   ->ExecuteSpec(QuerySpec::Simple(
                       "t", Query::Count(
                                Predicate::Between<int64_t>("nope", 0, 1))))
                   .ok());
  const std::vector<obs::FlightRecord> after =
      session->flight_recorder().Snapshot();
  ASSERT_EQ(after.size(), 7u);
  EXPECT_EQ(after.back().status, StatusCode::kNotFound);
}

TEST(SessionTelemetryTest, SharedBatchesStampBatchSeqAndWidth) {
  auto session = MakeSession();
  std::vector<QuerySpec> batch = {CountBetween(0, 500),
                                  CountBetween(400, 900),
                                  CountBetween(800, 1300)};
  std::vector<Result<QueryResult>> results =
      session->ExecuteShared("t", batch);
  ASSERT_EQ(results.size(), 3u);
  for (const Result<QueryResult>& result : results) {
    ASSERT_TRUE(result.ok()) << result.status();
  }

  const std::vector<obs::FlightRecord> records =
      session->flight_recorder().Snapshot();
  ASSERT_EQ(records.size(), 3u);
  const int64_t batch_seq = records[0].batch_seq;
  EXPECT_GE(batch_seq, 0);
  for (const obs::FlightRecord& record : records) {
    EXPECT_EQ(record.batch_seq, batch_seq);  // One shared pass.
    EXPECT_EQ(record.batch_width, 3);
  }

  // The next batch gets a fresh id.
  (void)session->ExecuteShared("t", batch);
  EXPECT_NE(session->flight_recorder().Snapshot().back().batch_seq,
            batch_seq);
}

TEST(SessionTelemetryTest, SlowQueryPromotesNextOccurrenceToDetailTrace) {
  auto session = MakeSession();
  obs::FlightRecorderOptions options;
  options.slow_query_nanos = 1;  // Everything is "slow".
  ASSERT_TRUE(session->SetFlightRecorderOptions(options).ok());

  // First run: no trace (table is kOff), but the digest gets flagged.
  Result<QueryResult> first = session->ExecuteSpec(CountBetween(100, 900));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->trace, nullptr);
  EXPECT_GE(session->flight_recorder().slow_queries(), 1);

  // Second run of the SAME spec arrives with a full detail trace.
  Result<QueryResult> second = session->ExecuteSpec(CountBetween(100, 900));
  ASSERT_TRUE(second.ok());
  ASSERT_NE(second->trace, nullptr);
  EXPECT_EQ(second->trace->level(), obs::TraceLevel::kDetail);

  // A different spec was never flagged-and-consumed for this digest; its
  // own first run is untraced (then flagged in turn).
  Result<QueryResult> other = session->ExecuteSpec(CountBetween(5000, 5100));
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->trace, nullptr);

  const std::vector<obs::FlightRecord> records =
      session->flight_recorder().Snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_FALSE(records[0].traced);
  EXPECT_TRUE(records[1].traced);  // The promoted re-run.
  EXPECT_FALSE(records[2].traced);
}

TEST(SessionTelemetryTest, DumpTelemetryCarriesFlightRecorderAndPercentiles) {
  auto session = MakeSession();
  ASSERT_TRUE(session->ExecuteSpec(CountBetween(100, 500)).ok());

  std::ostringstream out;
  session->DumpTelemetry(out);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"flight_recorder\""), std::string::npos);
  EXPECT_NE(doc.find("\"total_recorded\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"p95\""), std::string::npos);
  EXPECT_NE(doc.find("\"journal\""), std::string::npos);
  EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
}

// Queries dispatched through the QueryServer carry the server lifecycle
// span: queue wait, batching window, and the shared pass's phases.
TEST(ServerSpanTelemetryTest, TracedServerQueryCarriesLifecycleSpans) {
  auto session = MakeSession();
  QueryServerOptions options;
  options.auto_dispatch = false;
  QueryServer server(session.get(), options);

  QuerySpec spec = CountBetween(1000, 2000);
  spec.trace_level = obs::TraceLevel::kSummary;
  std::future<Result<QueryResult>> future = server.Submit(std::move(spec));
  EXPECT_EQ(server.DispatchNow(), 1);

  Result<QueryResult> result = future.get();
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->trace, nullptr);
  const std::string json = result->trace->ToJson();
  EXPECT_NE(json.find("\"server\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"batch_window\""), std::string::npos);
  EXPECT_NE(json.find("\"peek\""), std::string::npos);
  EXPECT_NE(json.find("\"shared_scan\""), std::string::npos);
  EXPECT_NE(json.find("\"replay\""), std::string::npos);
}

// The whole plane under concurrency: driver threads push queries through
// the auto-dispatching server and an ingest thread appends rows — both
// mutating live index state — while a scraper hammers every endpoint,
// /indexes included (its snapshots are taken under the per-table
// coordinator lock, so scraping during traffic is supported, not merely
// tolerated). This is the test the CI TSan job runs to prove the
// handlers' reads of live engine state are race-free.
TEST(TelemetryScrapeUnderLoadTest, ConcurrentScrapesStayValid) {
  auto session = MakeSession();
  Result<int> port = session->StartTelemetryServer();
  ASSERT_TRUE(port.ok()) << port.status();

  QueryServerOptions options;
  options.batching_window_nanos = 50'000;
  QueryServer server(session.get(), options);

  constexpr int kDrivers = 3;
  constexpr int kQueriesPerDriver = 40;
  std::atomic<int> failures{0};

  std::atomic<bool> done{false};
  std::atomic<int> scrape_errors{0};
  BackgroundThread scraper([&done, &scrape_errors, port = *port] {
    const char* targets[] = {"/metrics", "/healthz", "/journal?n=8",
                             "/flightrecorder", "/indexes"};
    size_t turn = 0;
    while (!done.load()) {
      const Result<std::string> response =
          HttpGet(port, targets[turn++ % 5]);
      if (!response.ok() || StatusOf(*response) < 200) {
        scrape_errors.fetch_add(1);
      }
    }
  });

  // Live ingest alongside the queries: appends rewrite exactly the
  // index state (zone metadata, unindexed tail) /indexes snapshots.
  std::atomic<int> append_errors{0};
  BackgroundThread ingester([&done, &append_errors, &session] {
    int64_t next = 20000;
    while (!done.load()) {
      std::vector<int64_t> rows;
      for (int i = 0; i < 64; ++i) rows.push_back(next++);
      if (!session->Append<int64_t>("t", "x", std::move(rows)).ok()) {
        append_errors.fetch_add(1);
      }
    }
  });

  ThreadPool drivers(kDrivers);
  drivers.ParallelFor(kDrivers, [&server, &failures](int64_t d, int) {
    for (int i = 0; i < kQueriesPerDriver; ++i) {
      const int64_t lo = (d * 1000 + i * 37) % 15000;
      Result<QueryResult> result = server.Execute(QuerySpec::Simple(
          "t",
          Query::Count(Predicate::Between<int64_t>("x", lo, lo + 400))));
      if (!result.ok()) failures.fetch_add(1);
    }
  });
  done.store(true);
  scraper.Join();
  ingester.Join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(scrape_errors.load(), 0);
  EXPECT_EQ(append_errors.load(), 0);
  EXPECT_EQ(session->flight_recorder().total_recorded(),
            kDrivers * kQueriesPerDriver);

  // A final scrape reflects the finished workload.
  Result<std::string> metrics = HttpGet(*port, "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NE(metrics->find("adaskip_server_submitted"), std::string::npos);
  EXPECT_NE(metrics->find("adaskip_server_queue_wait_nanos_bucket"),
            std::string::npos);
}

}  // namespace
}  // namespace adaskip
