#include "adaskip/engine/session.h"

#include <gtest/gtest.h>

#include <sstream>

#include "adaskip/adaptive/adaptive_zone_map.h"
#include "adaskip/workload/data_generator.h"

namespace adaskip {
namespace {

TEST(SessionTest, CreateTableAndAddColumns) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t").ok());
  EXPECT_EQ(session.CreateTable("t").code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(session.AddColumn<int64_t>("t", "x", {1, 2, 3}).ok());
  ASSERT_TRUE(session.AddColumn<double>("t", "y", {1.0, 2.0, 3.0}).ok());
  EXPECT_EQ(session.AddColumn<int64_t>("t", "x", {9}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(session.AddColumn<int64_t>("missing", "x", {1}).code(),
            StatusCode::kNotFound);
  Result<std::shared_ptr<Table>> table = session.GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 3);
}

TEST(SessionTest, RegisterExternallyBuiltTable) {
  Session session;
  auto table = std::make_shared<Table>("ext");
  ASSERT_TRUE(table->AddColumn("a", MakeColumn<int32_t>({1, 2})).ok());
  ASSERT_TRUE(session.RegisterTable(table).ok());
  EXPECT_TRUE(session.catalog().Contains("ext"));
}

TEST(SessionTest, AttachDetachIndex) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t").ok());
  ASSERT_TRUE(session.AddColumn<int64_t>("t", "x", {1, 2, 3}).ok());
  ASSERT_TRUE(session.AttachIndex("t", "x", IndexOptions::ZoneMap()).ok());
  Result<IndexSnapshot> snapshot = session.DescribeIndex("t", "x");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->table, "t");
  EXPECT_EQ(snapshot->column, "x");
  EXPECT_EQ(snapshot->kind, "zonemap");
  EXPECT_EQ(snapshot->num_rows, 3);
  EXPECT_GE(snapshot->zone_count, 1);
  EXPECT_GT(snapshot->memory_bytes, 0);
  EXPECT_FALSE(snapshot->description.empty());
  EXPECT_EQ(session.DescribeIndex("t", "nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session.DescribeIndex("other", "x").status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(session.DetachIndex("t", "x").ok());
  EXPECT_EQ(session.DescribeIndex("t", "x").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session.DetachIndex("t", "x").code(), StatusCode::kNotFound);
  EXPECT_EQ(session.AttachIndex("t", "nope", IndexOptions::ZoneMap()).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session.AttachIndex("missing", "x", {}).code(),
            StatusCode::kNotFound);
}

TEST(SessionTest, ExecuteAccumulatesWorkloadStats) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t").ok());
  DataGenOptions gen;
  gen.order = DataOrder::kSorted;
  gen.num_rows = 10000;
  gen.value_range = 10000;
  ASSERT_TRUE(
      session.AddColumn<int64_t>("t", "x", GenerateData<int64_t>(gen)).ok());
  ASSERT_TRUE(session.AttachIndex("t", "x", IndexOptions::ZoneMap(500)).ok());

  for (int i = 0; i < 5; ++i) {
    Result<QueryResult> result = session.ExecuteSpec(QuerySpec::Simple(
        "t", Query::Count(Predicate::Between<int64_t>("x", 100, 200))));
    ASSERT_TRUE(result.ok());
  }
  EXPECT_EQ(session.workload_stats().num_queries(), 5);
  EXPECT_GT(session.workload_stats().total_nanos(), 0);
  EXPECT_GT(session.workload_stats().MeanSkippedFraction(), 0.5);
  EXPECT_GT(session.workload_stats().MeanLatencyMicros(), 0.0);
  session.ResetWorkloadStats();
  EXPECT_EQ(session.workload_stats().num_queries(), 0);
}

TEST(SessionTest, ExecuteOnMissingTableFails) {
  Session session;
  EXPECT_EQ(session
                .ExecuteSpec(QuerySpec::Simple("nope",
                         Query::Count(Predicate::Between<int64_t>("x", 0, 1))))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(SessionTest, AdaptiveIndexIsIntrospectable) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t").ok());
  DataGenOptions gen;
  gen.order = DataOrder::kSorted;
  gen.num_rows = 20000;
  gen.value_range = 20000;
  ASSERT_TRUE(
      session.AddColumn<int64_t>("t", "x", GenerateData<int64_t>(gen)).ok());
  AdaptiveOptions adaptive;
  adaptive.min_zone_size = 128;
  ASSERT_TRUE(
      session.AttachIndex("t", "x", IndexOptions::Adaptive(adaptive)).ok());

  for (int i = 0; i < 10; ++i) {
    int64_t lo = 1000 * i;
    ASSERT_TRUE(session
                    .ExecuteSpec(QuerySpec::Simple("t", Query::Count(Predicate::Between<int64_t>(
                                      "x", lo, lo + 150))))
                    .ok());
  }
  Result<IndexSnapshot> snapshot = session.DescribeIndex("t", "x");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_GT(snapshot->adaptation.zones_refined, 0);
  EXPECT_GT(snapshot->zone_count, 1);
  EXPECT_EQ(snapshot->num_rows, 20000);
  EXPECT_FALSE(snapshot->adaptation.bypass);
}

TEST(SessionTest, TelemetryTogglesJournalHealthAndDump) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t").ok());
  DataGenOptions gen;
  gen.order = DataOrder::kSorted;
  gen.num_rows = 20000;
  gen.value_range = 20000;
  ASSERT_TRUE(
      session.AddColumn<int64_t>("t", "x", GenerateData<int64_t>(gen)).ok());
  AdaptiveOptions adaptive;
  adaptive.min_zone_size = 128;
  ASSERT_TRUE(
      session.AttachIndex("t", "x", IndexOptions::Adaptive(adaptive)).ok());

  // Both toggles default off: queries leave the journal and the health
  // monitor untouched.
  ASSERT_TRUE(session
                  .ExecuteSpec(QuerySpec::Simple("t", Query::Count(
                                    Predicate::Between<int64_t>("x", 0, 150))))
                  .ok());
  EXPECT_EQ(session.journal().total_appended(), 0);
  EXPECT_TRUE(session.HealthReport().empty());

  obs::HealthMonitorOptions health;
  health.window_queries = 4;
  health.min_windows = 2;
  session.SetHealthMonitorOptions(health);
  ExecOptions exec;
  exec.journal_events = true;
  exec.time_series = true;
  ASSERT_TRUE(session.SetExecOptions("t", exec).ok());
  for (int i = 0; i < 12; ++i) {
    int64_t lo = 1000 * i;
    ASSERT_TRUE(session
                    .ExecuteSpec(QuerySpec::Simple("t", Query::Count(Predicate::Between<int64_t>(
                                      "x", lo, lo + 150))))
                    .ok());
  }
  // The adaptive index split under this workload, and every structural
  // action landed in the session journal under the table.column scope.
  EXPECT_GT(session.journal().total_appended(), 0);
  ASSERT_FALSE(session.journal().Tail(1).empty());
  EXPECT_EQ(session.journal().Tail(1)[0].scope, "t.x");
  std::vector<obs::IndexHealth> report = session.HealthReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].scope, "t.x");
  EXPECT_EQ(report[0].queries_observed, 12);
  EXPECT_GT(report[0].windows_completed, 0);

  std::ostringstream dump;
  session.DumpTelemetry(dump);
  const std::string json = dump.str();
  EXPECT_NE(json.find("\"journal\""), std::string::npos);
  EXPECT_NE(json.find("\"health\""), std::string::npos);
  EXPECT_NE(json.find("\"time_series\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("t.x"), std::string::npos);

  // Toggling journaling back off unbinds the journal: further structural
  // actions are not recorded.
  ASSERT_TRUE(session.SetExecOptions("t", ExecOptions()).ok());
  const int64_t before = session.journal().total_appended();
  for (int i = 0; i < 12; ++i) {
    int64_t lo = 500 + 1000 * i;
    ASSERT_TRUE(session
                    .ExecuteSpec(QuerySpec::Simple("t", Query::Count(Predicate::Between<int64_t>(
                                      "x", lo, lo + 150))))
                    .ok());
  }
  EXPECT_EQ(session.journal().total_appended(), before);
}

TEST(SessionTest, DescribeIndexReportsAdaptationState) {
  // The value-type snapshot is the introspection surface (the deprecated
  // raw-pointer GetIndex shim is gone): adaptation actions, geometry, and
  // footprint all come out of DescribeIndex.
  Session session;
  ASSERT_TRUE(session.CreateTable("t").ok());
  DataGenOptions gen;
  gen.order = DataOrder::kSorted;
  gen.num_rows = 20000;
  gen.value_range = 20000;
  ASSERT_TRUE(
      session.AddColumn<int64_t>("t", "x", GenerateData<int64_t>(gen)).ok());
  AdaptiveOptions adaptive;
  adaptive.min_zone_size = 128;
  ASSERT_TRUE(
      session.AttachIndex("t", "x", IndexOptions::Adaptive(adaptive)).ok());
  for (int i = 0; i < 10; ++i) {
    int64_t lo = 1000 * i;
    ASSERT_TRUE(session
                    .ExecuteSpec(QuerySpec::Simple("t", Query::Count(Predicate::Between<int64_t>(
                                      "x", lo, lo + 150))))
                    .ok());
  }
  Result<IndexSnapshot> snapshot = session.DescribeIndex("t", "x");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().kind, "adaptive");
  EXPECT_EQ(snapshot.value().num_rows, 20000);
  EXPECT_GT(snapshot.value().adaptation.zones_refined, 0);
  EXPECT_GT(snapshot.value().zone_count, 0);
  EXPECT_GT(snapshot.value().memory_bytes, 0);
  EXPECT_FALSE(session.DescribeIndex("t", "nope").ok());
  EXPECT_FALSE(session.DescribeIndex("other", "x").ok());
}

TEST(SessionTest, WorkloadStatsSummaryMentionsQueries) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t").ok());
  ASSERT_TRUE(session.AddColumn<int64_t>("t", "x", {1, 2, 3}).ok());
  ASSERT_TRUE(
      session.ExecuteSpec(QuerySpec::Simple("t", Query::Count(Predicate::Equal<int64_t>("x", 2))))
          .ok());
  EXPECT_NE(session.workload_stats().Summary().find("1 queries"),
            std::string::npos);
}

// The ONE sanctioned use of the deprecated one-query-at-a-time entry
// point: prove the shim forwards to ExecuteSpec unchanged. Every other
// call site has been migrated; new code builds a QuerySpec.
TEST(SessionTest, DeprecatedExecuteShimForwardsToExecuteSpec) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t").ok());
  ASSERT_TRUE(session.AddColumn<int64_t>("t", "x", {1, 2, 3, 4, 5}).ok());
  const Query query = Query::Count(Predicate::Between<int64_t>("x", 2, 4));
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  Result<QueryResult> via_shim = session.Execute("t", query);
#pragma GCC diagnostic pop
  Result<QueryResult> via_spec =
      session.ExecuteSpec(QuerySpec::Simple("t", query));
  ASSERT_TRUE(via_shim.ok());
  ASSERT_TRUE(via_spec.ok());
  EXPECT_EQ(via_shim->count, 3);
  EXPECT_EQ(via_spec->count, via_shim->count);
  EXPECT_EQ(session.workload_stats().num_queries(), 2);
}

TEST(SessionTest, ExecuteSpecRejectsInvalidSpec) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t").ok());
  ASSERT_TRUE(session.AddColumn<int64_t>("t", "x", {1, 2, 3}).ok());
  QuerySpec no_predicates;
  no_predicates.table = "t";
  EXPECT_EQ(session.ExecuteSpec(no_predicates).status().code(),
            StatusCode::kInvalidArgument);
  QuerySpec negative_deadline = QuerySpec::Simple(
      "t", Query::Count(Predicate::Equal<int64_t>("x", 1)));
  negative_deadline.deadline_nanos = -1;
  EXPECT_EQ(session.ExecuteSpec(negative_deadline).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionTest, ExecuteSpecHonorsTraceOverride) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t").ok());
  ASSERT_TRUE(session.AddColumn<int64_t>("t", "x", {1, 2, 3, 4, 5}).ok());
  QuerySpec spec = QuerySpec::Simple(
      "t", Query::Count(Predicate::Between<int64_t>("x", 1, 3)));
  // Table default is kOff: no trace captured.
  Result<QueryResult> plain = session.ExecuteSpec(spec);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->trace, nullptr);
  // Per-query override captures a trace without touching table state.
  spec.trace_level = obs::TraceLevel::kSummary;
  Result<QueryResult> traced = session.ExecuteSpec(spec);
  ASSERT_TRUE(traced.ok());
  EXPECT_NE(traced->trace, nullptr);
  // And the table's configured level is back to kOff afterwards.
  spec.trace_level.reset();
  Result<QueryResult> after = session.ExecuteSpec(spec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->trace, nullptr);
}

TEST(SessionConfigureTest, AppliesOptionsAtomically) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t").ok());
  ASSERT_TRUE(session.AddColumn<int64_t>("t", "x", {1, 2, 3}).ok());

  SessionOptions options;
  ExecOptions exec;
  exec.num_threads = 2;
  exec.morsel_rows = 4096;
  options.tables["t"].exec = exec;
  obs::HealthMonitorOptions health;
  health.window_queries = 8;
  options.health = health;
  ASSERT_TRUE(session.Configure(options).ok());

  // The per-table exec options actually landed.
  ASSERT_TRUE(
      session
          .ExecuteSpec(QuerySpec::Simple(
              "t", Query::Count(Predicate::Equal<int64_t>("x", 2))))
          .ok());
}

TEST(SessionConfigureTest, RejectsUnknownTableWithoutApplyingAnything) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t").ok());
  ASSERT_TRUE(session.AddColumn<int64_t>("t", "x", {1, 2, 3}).ok());

  SessionOptions options;
  ExecOptions good;
  good.num_threads = 2;
  options.tables["t"].exec = good;
  options.tables["missing"].exec = ExecOptions();
  EXPECT_EQ(session.Configure(options).code(), StatusCode::kNotFound);
}

TEST(SessionConfigureTest, RejectsInvalidKnobsInValidationPhase) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t").ok());
  ASSERT_TRUE(session.AddColumn<int64_t>("t", "x", {1, 2, 3}).ok());

  SessionOptions bad_exec;
  ExecOptions exec;
  exec.num_threads = 0;
  bad_exec.tables["t"].exec = exec;
  EXPECT_EQ(session.Configure(bad_exec).code(), StatusCode::kInvalidArgument);

  SessionOptions bad_health;
  obs::HealthMonitorOptions health;
  health.window_queries = 0;
  bad_health.health = health;
  EXPECT_EQ(session.Configure(bad_health).code(),
            StatusCode::kInvalidArgument);

  SessionOptions bad_drop;
  obs::HealthMonitorOptions drop;
  drop.degrade_drop = 1.5;
  bad_drop.health = drop;
  EXPECT_EQ(session.Configure(bad_drop).code(), StatusCode::kInvalidArgument);
}

TEST(QueryStatsTest, ToStringContainsIndexName) {
  QueryStats stats;
  stats.index_name = "adaptive";
  stats.rows_total = 10;
  stats.rows_scanned = 5;
  EXPECT_NE(stats.ToString().find("[adaptive]"), std::string::npos);
  EXPECT_NEAR(stats.SkippedFraction(), 0.5, 1e-9);
}

}  // namespace
}  // namespace adaskip
