// The shared-pass equivalence oracle: for EVERY skip-index kind and
// batch widths 1/4/64, a query stream executed through shared batches
// (Session::ExecuteShared) must leave results, index state
// (DescribeIndex), and the adaptation journal bit-identical to the same
// stream executed one query at a time in submission order. This is the
// contract that lets the QueryServer batch aggressively without
// perturbing the paper's adaptive feedback loop.
//
// Int64 columns throughout: for float columns SUM equality carries the
// usual accumulation-order caveat (see ScanExecutor::ExecuteShared).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "adaskip/engine/session.h"
#include "adaskip/workload/data_generator.h"

namespace adaskip {
namespace {

constexpr int64_t kRows = 24000;
constexpr int kQueries = 64;

IndexOptions MakeIndexOptions(IndexKind kind) {
  IndexOptions options;
  options.kind = kind;
  // Small zones so the stream actually triggers adaptation.
  options.zone_map.zone_size = 512;
  options.adaptive.min_zone_size = 128;
  return options;
}

std::unique_ptr<Session> MakeArm(IndexKind kind) {
  auto session = std::make_unique<Session>();
  ADASKIP_CHECK_OK(session->CreateTable("t"));
  DataGenOptions gen;
  gen.order = DataOrder::kClustered;
  gen.num_rows = kRows;
  gen.value_range = kRows;
  gen.seed = 13;
  ADASKIP_CHECK_OK(
      session->AddColumn<int64_t>("t", "x", GenerateData<int64_t>(gen)));
  DataGenOptions gen_y = gen;
  gen_y.order = DataOrder::kUniform;
  gen_y.seed = 29;
  ADASKIP_CHECK_OK(
      session->AddColumn<int64_t>("t", "y", GenerateData<int64_t>(gen_y)));
  ADASKIP_CHECK_OK(session->AttachIndex("t", "x", MakeIndexOptions(kind)));
  // Journal every structural adaptation, so the two arms' event streams
  // can be compared entry by entry.
  ExecOptions exec;
  exec.journal_events = true;
  ADASKIP_CHECK_OK(session->SetExecOptions("t", exec));
  return session;
}

// A deterministic mixed stream: drifting range COUNTs (the adaptation
// driver), plus SUM/MIN/MAX/MATERIALIZE and a couple of conjunctions
// (which take the solo lane inside a shared batch). Cases 1, 6, and 7
// repeat FIXED predicates so wide batches contain duplicate-predicate
// groups — including a COUNT/SUM pair sharing one predicate and
// repeated MATERIALIZEs (the match-positions copy path).
std::vector<QuerySpec> MakeStream() {
  const Predicate fixed_hot = Predicate::Between<int64_t>("x", 5000, 5600);
  const Predicate fixed_rows = Predicate::Between<int64_t>("x", 7000, 7800);
  std::vector<QuerySpec> specs;
  for (int i = 0; i < kQueries; ++i) {
    const int64_t lo = (i * 331) % (kRows - 1200);
    const int64_t hi = lo + 400 + (i % 5) * 160;
    Query query;
    switch (i % 8) {
      case 1:
        query = Query::Count(fixed_hot);
        break;
      case 6:
        query = Query::Sum(fixed_hot);
        break;
      case 3:
        query = Query::Min(Predicate::Between<int64_t>("x", lo, hi));
        break;
      case 5:
        query = Query::Max(Predicate::Between<int64_t>("x", lo, hi));
        break;
      case 7:
        query = Query::Materialize(fixed_rows);
        break;
      case 4: {
        // Conjunction: solo lane, still replayed at its turn.
        query = Query::Count(Predicate::Between<int64_t>("x", lo, hi));
        query.predicates.push_back(
            Predicate::Between<int64_t>("y", 0, kRows / 2));
        break;
      }
      default:
        query = Query::Count(Predicate::Between<int64_t>("x", lo, hi));
        break;
    }
    specs.push_back(QuerySpec::Simple("t", std::move(query)));
  }
  return specs;
}

void ExpectSameResult(const QueryResult& serial, const QueryResult& shared,
                      int query_index) {
  SCOPED_TRACE("query #" + std::to_string(query_index));
  EXPECT_EQ(serial.count, shared.count);
  EXPECT_EQ(serial.sum, shared.sum);  // Int payloads: exact in double.
  if (std::isnan(serial.min)) {
    EXPECT_TRUE(std::isnan(shared.min));
  } else {
    EXPECT_EQ(serial.min, shared.min);
  }
  if (std::isnan(serial.max)) {
    EXPECT_TRUE(std::isnan(shared.max));
  } else {
    EXPECT_EQ(serial.max, shared.max);
  }
  EXPECT_TRUE(serial.rows == shared.rows);
  // Serial-equivalent accounting: the shared pass must report the same
  // logical scan footprint the standalone execution had.
  EXPECT_EQ(serial.stats.rows_total, shared.stats.rows_total);
  EXPECT_EQ(serial.stats.rows_scanned, shared.stats.rows_scanned);
  EXPECT_EQ(serial.stats.rows_matched, shared.stats.rows_matched);
}

void ExpectSameIndexState(Session* serial, Session* shared) {
  Result<IndexSnapshot> a = serial->DescribeIndex("t", "x");
  Result<IndexSnapshot> b = shared->DescribeIndex("t", "x");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kind, b->kind);
  EXPECT_EQ(a->num_rows, b->num_rows);
  EXPECT_EQ(a->zone_count, b->zone_count);
  EXPECT_EQ(a->memory_bytes, b->memory_bytes);
  EXPECT_EQ(a->unindexed_tail_rows, b->unindexed_tail_rows);
  // The full rendered state, zone boundaries and all.
  EXPECT_EQ(a->description, b->description);
  EXPECT_EQ(a->adaptation.zones_refined, b->adaptation.zones_refined);
  EXPECT_EQ(a->adaptation.zones_merged, b->adaptation.zones_merged);
  EXPECT_EQ(a->adaptation.rebuilds, b->adaptation.rebuilds);
  EXPECT_EQ(a->adaptation.tail_absorbs, b->adaptation.tail_absorbs);
  EXPECT_EQ(a->adaptation.bypassed_probes, b->adaptation.bypassed_probes);
  EXPECT_EQ(a->adaptation.bypass, b->adaptation.bypass);
  EXPECT_EQ(a->adaptation.queries_observed, b->adaptation.queries_observed);
  EXPECT_EQ(a->adaptation.skipped_fraction_ewma,
            b->adaptation.skipped_fraction_ewma);
  EXPECT_EQ(a->adaptation.entries_per_row_ewma,
            b->adaptation.entries_per_row_ewma);
  EXPECT_EQ(a->adaptation.net_benefit_per_row,
            b->adaptation.net_benefit_per_row);
}

// Journal equality modulo wall-clock timestamps (`nanos` is the only
// nondeterministic field; replay ignores it too).
void ExpectSameJournal(Session* serial, Session* shared) {
  std::vector<obs::JournalEvent> a = serial->journal().Snapshot();
  std::vector<obs::JournalEvent> b = shared->journal().Snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("journal event #" + std::to_string(i));
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].scope, b[i].scope);
    EXPECT_EQ(a[i].query_seq, b[i].query_seq);
    EXPECT_EQ(a[i].args, b[i].args);
    EXPECT_EQ(a[i].values, b[i].values);
    EXPECT_EQ(a[i].detail, b[i].detail);
  }
}

class SharedScanIdentityTest
    : public ::testing::TestWithParam<std::tuple<IndexKind, int>> {};

TEST_P(SharedScanIdentityTest, SharedBatchesMatchSerialExecution) {
  const IndexKind kind = std::get<0>(GetParam());
  const int width = std::get<1>(GetParam());

  auto serial = MakeArm(kind);
  auto shared = MakeArm(kind);
  const std::vector<QuerySpec> specs = MakeStream();

  std::vector<QueryResult> serial_results;
  for (const QuerySpec& spec : specs) {
    Result<QueryResult> result = serial->ExecuteSpec(spec);
    ASSERT_TRUE(result.ok()) << result.status();
    serial_results.push_back(std::move(result).value());
  }

  std::vector<QueryResult> shared_results;
  for (size_t begin = 0; begin < specs.size();
       begin += static_cast<size_t>(width)) {
    const size_t end =
        std::min(specs.size(), begin + static_cast<size_t>(width));
    std::vector<QuerySpec> batch(specs.begin() + static_cast<int64_t>(begin),
                                 specs.begin() + static_cast<int64_t>(end));
    std::vector<Result<QueryResult>> results =
        shared->ExecuteShared("t", batch);
    ASSERT_EQ(results.size(), batch.size());
    for (Result<QueryResult>& result : results) {
      ASSERT_TRUE(result.ok()) << result.status();
      shared_results.push_back(std::move(result).value());
    }
  }

  ASSERT_EQ(serial_results.size(), shared_results.size());
  for (size_t i = 0; i < serial_results.size(); ++i) {
    ExpectSameResult(serial_results[i], shared_results[i],
                     static_cast<int>(i));
  }
  ExpectSameIndexState(serial.get(), shared.get());
  ExpectSameJournal(serial.get(), shared.get());

  // Both arms saw the identical query stream in their workload stats.
  EXPECT_EQ(serial->workload_stats().num_queries(),
            shared->workload_stats().num_queries());
  EXPECT_EQ(serial->workload_stats().rows_scanned(),
            shared->workload_stats().rows_scanned());
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllWidths, SharedScanIdentityTest,
    ::testing::Combine(::testing::Values(IndexKind::kFullScan,
                                         IndexKind::kZoneMap,
                                         IndexKind::kZoneTree,
                                         IndexKind::kImprints,
                                         IndexKind::kBloomZoneMap,
                                         IndexKind::kAdaptive,
                                         IndexKind::kAdaptiveImprints),
                       ::testing::Values(1, 4, 64)),
    [](const ::testing::TestParamInfo<std::tuple<IndexKind, int>>& info) {
      return std::string(IndexKindToString(std::get<0>(info.param))) +
             "_width" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace adaskip
