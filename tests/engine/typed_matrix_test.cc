// End-to-end correctness over every supported column type: the main
// ExecutorMatrixTest covers int64 exhaustively; this suite replays the
// probe→scan→feedback→aggregate pipeline for int32/int64/float/double
// columns under the adaptive zonemap and the static zonemap, validating
// against per-type naive answers.

#include <gtest/gtest.h>

#include "adaskip/engine/scan_executor.h"
#include "adaskip/scan/scan_kernel.h"
#include "adaskip/util/rng.h"
#include "adaskip/workload/data_generator.h"

namespace adaskip {
namespace {

template <typename T>
class TypedExecutorTest : public ::testing::Test {};

using ColumnTypes = ::testing::Types<int32_t, int64_t, float, double>;
TYPED_TEST_SUITE(TypedExecutorTest, ColumnTypes);

template <typename T>
std::shared_ptr<Table> MakeTypedTable(DataOrder order) {
  DataGenOptions gen;
  gen.order = order;
  gen.num_rows = 20000;
  gen.value_range = 100000;
  gen.seed = 51;
  auto table = std::make_shared<Table>("t");
  ADASKIP_CHECK_OK(table->AddColumn("x", MakeColumn(GenerateData<T>(gen))));
  return table;
}

template <typename T>
void RunTypedMatrix(IndexKind kind, DataOrder order) {
  auto table = MakeTypedTable<T>(order);
  IndexManager indexes(table);
  IndexOptions options;
  options.kind = kind;
  options.zone_map.zone_size = 512;
  options.adaptive.initial_zone_size = 512;
  options.adaptive.min_zone_size = 64;
  ASSERT_TRUE(indexes.AttachIndex("x", options).ok());
  ScanExecutor executor(table, &indexes);
  const TypedColumn<T>& x = *table->ColumnByName("x").value()->template As<T>();

  Rng rng(23);
  for (int i = 0; i < 25; ++i) {
    T lo = static_cast<T>(rng.NextInt64(100000));
    T hi = static_cast<T>(static_cast<int64_t>(lo) + rng.NextInt64(8000));
    Predicate pred = Predicate::Between<T>("x", lo, hi);
    ValueInterval<T> interval = pred.ToInterval<T>();

    // COUNT.
    Result<QueryResult> count = executor.Execute(Query::Count(pred));
    ASSERT_TRUE(count.ok()) << count.status();
    EXPECT_EQ(count->count, reference::CountMatches(x.data(), {0, x.size()},
                                                    interval))
        << pred.ToString();

    // SUM. Candidate-range-wise accumulation associates differently from
    // the naive full-range sum, so fractional payloads may differ in the
    // last ulps; integral payloads are exact in a double accumulator.
    Result<QueryResult> sum = executor.Execute(Query::Sum(pred));
    ASSERT_TRUE(sum.ok());
    double expected_sum =
        reference::SumMatches(x.data(), {0, x.size()}, interval);
    if constexpr (std::numeric_limits<T>::is_integer) {
      EXPECT_DOUBLE_EQ(sum->sum, expected_sum) << pred.ToString();
    } else {
      EXPECT_NEAR(sum->sum, expected_sum, 1e-9 * std::abs(expected_sum))
          << pred.ToString();
    }

    // MATERIALIZE.
    Result<QueryResult> rows = executor.Execute(Query::Materialize(pred));
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->rows, reference::MaterializeMatches(
                              x.data(), {0, x.size()}, interval))
        << pred.ToString();

    // Stats sanity on every query of every type.
    EXPECT_LE(count->stats.rows_matched, count->stats.rows_scanned);
    EXPECT_LE(count->stats.rows_scanned, count->stats.rows_total);
  }
}

TYPED_TEST(TypedExecutorTest, AdaptiveOnRandomWalk) {
  RunTypedMatrix<TypeParam>(IndexKind::kAdaptive, DataOrder::kRandomWalk);
}

TYPED_TEST(TypedExecutorTest, AdaptiveOnClustered) {
  RunTypedMatrix<TypeParam>(IndexKind::kAdaptive, DataOrder::kClustered);
}

TYPED_TEST(TypedExecutorTest, AdaptiveOnAlmostSorted) {
  RunTypedMatrix<TypeParam>(IndexKind::kAdaptive, DataOrder::kAlmostSorted);
}

TYPED_TEST(TypedExecutorTest, ZoneMapOnSorted) {
  RunTypedMatrix<TypeParam>(IndexKind::kZoneMap, DataOrder::kSorted);
}

TYPED_TEST(TypedExecutorTest, ZoneTreeOnUniform) {
  RunTypedMatrix<TypeParam>(IndexKind::kZoneTree, DataOrder::kUniform);
}

TYPED_TEST(TypedExecutorTest, ImprintsOnKSorted) {
  RunTypedMatrix<TypeParam>(IndexKind::kImprints, DataOrder::kKSorted);
}

TYPED_TEST(TypedExecutorTest, AdaptiveImprintsOnRandomWalk) {
  RunTypedMatrix<TypeParam>(IndexKind::kAdaptiveImprints,
                            DataOrder::kRandomWalk);
}

TYPED_TEST(TypedExecutorTest, BloomZoneMapPointLookups) {
  using T = TypeParam;
  auto table = MakeTypedTable<T>(DataOrder::kClustered);
  IndexManager indexes(table);
  IndexOptions options;
  options.kind = IndexKind::kBloomZoneMap;
  options.bloom.zone_size = 512;
  ASSERT_TRUE(indexes.AttachIndex("x", options).ok());
  ScanExecutor executor(table, &indexes);
  const TypedColumn<T>& x = *table->ColumnByName("x").value()->template As<T>();

  Rng rng(29);
  for (int i = 0; i < 25; ++i) {
    T value = x.Get(rng.NextInt64(x.size()));
    Predicate pred = Predicate::Equal<T>("x", value);
    Result<QueryResult> result = executor.Execute(Query::Count(pred));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count,
              reference::CountMatches(x.data(), {0, x.size()},
                                      pred.ToInterval<T>()));
    EXPECT_GE(result->count, 1);  // The probed value exists.
  }
}

}  // namespace
}  // namespace adaskip
