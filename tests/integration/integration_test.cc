// Integration tests: full library stack (generators → session → indexes →
// executor → stats), checking the cross-arm result-equality guarantee and
// the qualitative behaviors every experiment in EXPERIMENTS.md relies on.

#include <gtest/gtest.h>

#include "adaskip/engine/session.h"
#include "adaskip/workload/data_generator.h"
#include "adaskip/workload/query_generator.h"
#include "adaskip/workload/workload_runner.h"

namespace adaskip {
namespace {

struct Arm {
  std::string label;
  IndexOptions index;
};

/// Builds a fresh session with one table/column of `order` data, attaches
/// `index`, runs `queries`, and returns the arm result.
ArmResult RunArm(DataOrder order, const IndexOptions& index,
                 const std::vector<Query>& queries, const std::string& label) {
  DataGenOptions gen;
  gen.order = order;
  gen.num_rows = 200000;
  gen.value_range = 1 << 20;
  gen.seed = 1234;
  Session session;
  ADASKIP_CHECK_OK(session.CreateTable("t"));
  ADASKIP_CHECK_OK(session.AddColumn<int64_t>("t", "x",
                                              GenerateData<int64_t>(gen)));
  ADASKIP_CHECK_OK(session.AttachIndex("t", "x", index));
  Result<ArmResult> arm = RunWorkload(&session, "t", "x", queries, label);
  ADASKIP_CHECK_OK(arm);
  return std::move(arm).value();
}

std::vector<Query> MakeQueries(DataOrder order, int count,
                               double selectivity, QueryPattern pattern) {
  DataGenOptions gen;
  gen.order = order;
  gen.num_rows = 200000;
  gen.value_range = 1 << 20;
  gen.seed = 1234;
  std::vector<int64_t> data = GenerateData<int64_t>(gen);
  QueryGenOptions qgen;
  qgen.selectivity = selectivity;
  qgen.pattern = pattern;
  qgen.seed = 999;
  QueryGenerator<int64_t> generator("x", std::span<const int64_t>(data),
                                    qgen);
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    queries.push_back(Query::Count(generator.Next()));
  }
  return queries;
}

TEST(IntegrationTest, AllIndexArmsComputeIdenticalAnswers) {
  const std::vector<Query> queries =
      MakeQueries(DataOrder::kClustered, 60, 0.01, QueryPattern::kUniform);
  const Arm arms[] = {
      {"fullscan", IndexOptions::FullScan()},
      {"zonemap", IndexOptions::ZoneMap(4096)},
      {"zonetree", [] {
         IndexOptions o;
         o.kind = IndexKind::kZoneTree;
         return o;
       }()},
      {"imprints", [] {
         IndexOptions o;
         o.kind = IndexKind::kImprints;
         return o;
       }()},
      {"bloom", [] {
         IndexOptions o;
         o.kind = IndexKind::kBloomZoneMap;
         return o;
       }()},
      {"adaptive", IndexOptions::Adaptive()},
  };
  double checksum = 0.0;
  bool first = true;
  for (const Arm& arm : arms) {
    ArmResult result =
        RunArm(DataOrder::kClustered, arm.index, queries, arm.label);
    EXPECT_EQ(result.stats.num_queries(), 60) << arm.label;
    if (first) {
      checksum = result.result_checksum;
      first = false;
    } else {
      EXPECT_DOUBLE_EQ(result.result_checksum, checksum) << arm.label;
    }
  }
}

TEST(IntegrationTest, AdaptiveScansFewerRowsThanStaticOnClusteredData) {
  const std::vector<Query> queries =
      MakeQueries(DataOrder::kClustered, 100, 0.01, QueryPattern::kUniform);
  ArmResult zonemap = RunArm(DataOrder::kClustered,
                             IndexOptions::ZoneMap(4096), queries, "static");
  AdaptiveOptions adaptive;
  adaptive.initial_zone_size = 4096;
  adaptive.min_zone_size = 256;
  ArmResult ada = RunArm(DataOrder::kClustered,
                         IndexOptions::Adaptive(adaptive), queries, "ada");
  // Refinement must tighten the scan footprint below the static zonemap's.
  EXPECT_LT(ada.stats.rows_scanned(), zonemap.stats.rows_scanned());
  EXPECT_GT(ada.final_zone_count, 200000 / 4096);
}

TEST(IntegrationTest, SkippingCollapsesOnUniformDataAndBypassEngages) {
  const std::vector<Query> queries =
      MakeQueries(DataOrder::kUniform, 200, 0.01, QueryPattern::kUniform);
  ArmResult zonemap = RunArm(DataOrder::kUniform, IndexOptions::ZoneMap(4096),
                             queries, "static");
  // Static zonemaps skip essentially nothing on shuffled data.
  EXPECT_LT(zonemap.stats.MeanSkippedFraction(), 0.02);

  AdaptiveOptions adaptive;
  adaptive.initial_zone_size = 4096;
  adaptive.cost_model_warmup_queries = 8;
  ArmResult ada = RunArm(DataOrder::kUniform, IndexOptions::Adaptive(adaptive),
                         queries, "ada");
  // The adaptive arm gives up probing: its total metadata reads must be
  // far below the static arm's (which reads every zone every query).
  EXPECT_LT(ada.stats.entries_read(), zonemap.stats.entries_read() / 2);
}

TEST(IntegrationTest, AdaptiveTracksWorkloadDrift) {
  DataGenOptions gen;
  gen.order = DataOrder::kSorted;
  gen.num_rows = 200000;
  gen.value_range = 1 << 20;
  gen.seed = 77;
  std::vector<int64_t> data = GenerateData<int64_t>(gen);

  QueryGenOptions qgen;
  qgen.pattern = QueryPattern::kDrifting;
  qgen.selectivity = 0.005;
  qgen.hot_fraction = 0.02;
  qgen.hot_center = 0.1;
  qgen.drift_per_query = 0.004;
  QueryGenerator<int64_t> generator("x", std::span<const int64_t>(data), qgen);
  std::vector<Query> queries;
  for (int i = 0; i < 200; ++i) queries.push_back(Query::Count(generator.Next()));

  Session session;
  ADASKIP_CHECK_OK(session.CreateTable("t"));
  ADASKIP_CHECK_OK(session.AddColumn<int64_t>("t", "x", std::move(data)));
  AdaptiveOptions adaptive;
  adaptive.min_zone_size = 256;
  ADASKIP_CHECK_OK(
      session.AttachIndex("t", "x", IndexOptions::Adaptive(adaptive)));
  Result<ArmResult> arm = RunWorkload(&session, "t", "x", queries, "drift");
  ASSERT_TRUE(arm.ok());
  // Late queries (post-adaptation, despite drift) skip the vast majority
  // of rows.
  double late_skip = 0.0;
  for (size_t i = 150; i < 200; ++i) late_skip += arm->per_query_skipped[i];
  EXPECT_GT(late_skip / 50.0, 0.8);
}

TEST(IntegrationTest, PerQuerySeriesShowsConvergence) {
  const std::vector<Query> queries =
      MakeQueries(DataOrder::kSorted, 120, 0.01, QueryPattern::kUniform);
  AdaptiveOptions lazy;
  lazy.initial_zone_size = 0;  // Fully lazy start: worst-case first query.
  ArmResult ada = RunArm(DataOrder::kSorted, IndexOptions::Adaptive(lazy),
                         queries, "ada");
  ASSERT_EQ(ada.per_query_skipped.size(), 120u);
  // First query starts from one zone: nothing skipped.
  EXPECT_LT(ada.per_query_skipped.front(), 0.01);
  // After convergence queries skip nearly everything.
  double late = 0.0;
  for (size_t i = 100; i < 120; ++i) late += ada.per_query_skipped[i];
  EXPECT_GT(late / 20.0, 0.95);
}

TEST(IntegrationTest, WorkloadRunnerReportsIndexFootprint) {
  const std::vector<Query> queries =
      MakeQueries(DataOrder::kSorted, 10, 0.01, QueryPattern::kUniform);
  ArmResult arm =
      RunArm(DataOrder::kSorted, IndexOptions::ZoneMap(1024), queries, "zm");
  EXPECT_EQ(arm.final_zone_count, (200000 + 1023) / 1024);
  EXPECT_GT(arm.index_memory_bytes, 0);
  EXPECT_EQ(arm.label, "zm");
  EXPECT_EQ(arm.per_query_micros.size(), 10u);
  EXPECT_GT(arm.total_seconds(), 0.0);
}

TEST(IntegrationTest, MultiColumnConjunctionWithMixedIndexes) {
  DataGenOptions gen;
  gen.num_rows = 50000;
  gen.value_range = 100000;
  Session session;
  ADASKIP_CHECK_OK(session.CreateTable("t"));
  gen.order = DataOrder::kSorted;
  gen.seed = 1;
  ADASKIP_CHECK_OK(
      session.AddColumn<int64_t>("t", "time", GenerateData<int64_t>(gen)));
  gen.order = DataOrder::kRandomWalk;
  gen.seed = 2;
  ADASKIP_CHECK_OK(
      session.AddColumn<int64_t>("t", "value", GenerateData<int64_t>(gen)));
  ADASKIP_CHECK_OK(session.AttachIndex("t", "time", IndexOptions::ZoneMap()));
  ADASKIP_CHECK_OK(
      session.AttachIndex("t", "value", IndexOptions::Adaptive()));

  Query query;
  query.predicates = {Predicate::Between<int64_t>("time", 20000, 40000),
                      Predicate::Between<int64_t>("value", 30000, 70000)};
  query.aggregate = AggregateKind::kCount;
  Result<QueryResult> with_index = session.ExecuteSpec(QuerySpec::Simple("t", query));
  ASSERT_TRUE(with_index.ok());

  // Same question without indexes must agree.
  Session bare;
  gen.order = DataOrder::kSorted;
  gen.seed = 1;
  ADASKIP_CHECK_OK(bare.CreateTable("t"));
  ADASKIP_CHECK_OK(
      bare.AddColumn<int64_t>("t", "time", GenerateData<int64_t>(gen)));
  gen.order = DataOrder::kRandomWalk;
  gen.seed = 2;
  ADASKIP_CHECK_OK(
      bare.AddColumn<int64_t>("t", "value", GenerateData<int64_t>(gen)));
  Result<QueryResult> without_index = bare.ExecuteSpec(QuerySpec::Simple("t", query));
  ASSERT_TRUE(without_index.ok());
  EXPECT_EQ(with_index->count, without_index->count);
  // The sorted time zonemap restricts the scan.
  EXPECT_LT(with_index->stats.rows_scanned,
            without_index->stats.rows_scanned);
}

}  // namespace
}  // namespace adaskip
