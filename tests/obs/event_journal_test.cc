#include "adaskip/obs/event_journal.h"

#include <gtest/gtest.h>

#include <vector>

namespace adaskip {
namespace obs {
namespace {

JournalEvent MakeEvent(EventKind kind, std::string scope = "t.x") {
  JournalEvent event;
  event.kind = kind;
  event.scope = std::move(scope);
  return event;
}

TEST(EventJournalTest, AssignsMonotonicSequenceNumbers) {
  EventJournal journal;
  for (int i = 0; i < 5; ++i) {
    journal.AppendEvent(MakeEvent(EventKind::kZoneSplit));
  }
  std::vector<JournalEvent> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, static_cast<int64_t>(i) + 1);
  }
  EXPECT_EQ(journal.total_appended(), 5);
  EXPECT_EQ(journal.size(), 5);
  EXPECT_EQ(journal.spilled(), 0);
}

TEST(EventJournalTest, UsesInjectedClock) {
  int64_t now = 100;
  EventJournalOptions options;
  options.clock = [&now] { return now; };
  EventJournal journal(std::move(options));
  journal.AppendEvent(MakeEvent(EventKind::kZoneSplit));
  now = 250;
  journal.AppendEvent(MakeEvent(EventKind::kZoneMerge));
  std::vector<JournalEvent> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].nanos, 100);
  EXPECT_EQ(events[1].nanos, 250);
}

TEST(EventJournalTest, EvictsOldestToSpillWhenFull) {
  std::vector<int64_t> spilled_seqs;
  EventJournalOptions options;
  options.capacity = 3;
  options.spill = [&spilled_seqs](const JournalEvent& event) {
    spilled_seqs.push_back(event.seq);
  };
  EventJournal journal(std::move(options));
  for (int i = 0; i < 7; ++i) {
    journal.AppendEvent(MakeEvent(EventKind::kZoneSplit));
  }
  EXPECT_EQ(journal.size(), 3);
  EXPECT_EQ(journal.total_appended(), 7);
  EXPECT_EQ(journal.spilled(), 4);
  EXPECT_EQ(spilled_seqs, (std::vector<int64_t>{1, 2, 3, 4}));
  std::vector<JournalEvent> retained = journal.Snapshot();
  ASSERT_EQ(retained.size(), 3u);
  EXPECT_EQ(retained.front().seq, 5);
  EXPECT_EQ(retained.back().seq, 7);
}

TEST(EventJournalTest, TailReturnsMostRecentOldestFirst) {
  EventJournal journal;
  for (int i = 0; i < 6; ++i) {
    journal.AppendEvent(MakeEvent(EventKind::kZoneSplit));
  }
  std::vector<JournalEvent> tail = journal.Tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 5);
  EXPECT_EQ(tail[1].seq, 6);
  EXPECT_EQ(journal.Tail(100).size(), 6u);
  EXPECT_TRUE(journal.Tail(0).empty());
}

TEST(EventJournalTest, ToJsonCarriesPayloadAndEscapesDetail) {
  EventJournalOptions options;
  options.clock = [] { return int64_t{42}; };
  EventJournal journal(std::move(options));
  JournalEvent event = MakeEvent(EventKind::kZoneSplit, "t.\"x\"");
  event.query_seq = 9;
  event.args = {0, 100, 50};
  event.values = {0.5};
  event.detail = "line1\nline2";
  journal.AppendEvent(std::move(event));
  const std::string json = journal.Snapshot()[0].ToJson();
  EXPECT_NE(json.find("\"seq\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"nanos\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"zone_split\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"scope\":\"t.\\\"x\\\"\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"query_seq\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":[0,100,50]"), std::string::npos) << json;
  EXPECT_NE(json.find("0.5"), std::string::npos) << json;
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos) << json;
}

TEST(EventJournalTest, RenderJsonlEmitsOneObjectPerLine) {
  EventJournal journal;
  journal.AppendEvent(MakeEvent(EventKind::kIndexAttach));
  journal.AppendEvent(MakeEvent(EventKind::kModeChange));
  const std::string jsonl = journal.RenderJsonl();
  size_t lines = 0;
  for (char c : jsonl) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("index_attach"), std::string::npos);
  EXPECT_NE(jsonl.find("mode_change"), std::string::npos);
}

TEST(EventJournalTest, MacroSkipsAppendWhenUnbound) {
  EventJournal journal;
  EventJournal* bound = &journal;
  EventJournal* unbound = nullptr;
  ADASKIP_JOURNAL_EVENT(unbound, MakeEvent(EventKind::kZoneSplit));
  ADASKIP_JOURNAL_EVENT(bound, MakeEvent(EventKind::kZoneSplit));
  EXPECT_EQ(journal.total_appended(), 1);
}

TEST(EventJournalTest, EventKindNamesAreStable) {
  EXPECT_EQ(EventKindToString(EventKind::kIndexAttach), "index_attach");
  EXPECT_EQ(EventKindToString(EventKind::kIndexStale), "index_stale");
  EXPECT_EQ(EventKindToString(EventKind::kZoneSplit), "zone_split");
  EXPECT_EQ(EventKindToString(EventKind::kZoneMerge), "zone_merge");
  EXPECT_EQ(EventKindToString(EventKind::kTailAbsorb), "tail_absorb");
  EXPECT_EQ(EventKindToString(EventKind::kImprintRebin), "imprint_rebin");
  EXPECT_EQ(EventKindToString(EventKind::kImprintTailExtend),
            "imprint_tail_extend");
  EXPECT_EQ(EventKindToString(EventKind::kModeChange), "mode_change");
}

}  // namespace
}  // namespace obs
}  // namespace adaskip
