#include "adaskip/obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace adaskip {
namespace obs {
namespace {

FlightRecord MakeRecord(uint64_t digest, int64_t latency_nanos) {
  FlightRecord record;
  record.spec_digest = digest;
  record.latency_nanos = latency_nanos;
  record.rows_scanned = 100;
  record.rows_skipped = 900;
  return record;
}

TEST(FlightRecorderOptionsTest, ValidateRejectsNegativeKnobs) {
  EXPECT_TRUE(ValidateFlightRecorderOptions({}).ok());

  FlightRecorderOptions bad_capacity;
  bad_capacity.capacity = -1;
  EXPECT_EQ(ValidateFlightRecorderOptions(bad_capacity).code(),
            StatusCode::kInvalidArgument);

  FlightRecorderOptions bad_threshold;
  bad_threshold.slow_query_nanos = -1;
  EXPECT_EQ(ValidateFlightRecorderOptions(bad_threshold).code(),
            StatusCode::kInvalidArgument);

  FlightRecorderOptions bad_pending;
  bad_pending.max_pending_promotions = -1;
  EXPECT_EQ(ValidateFlightRecorderOptions(bad_pending).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlightRecorderTest, RecordsStampSequenceAndTimestamp) {
  FlightRecorder recorder;
  recorder.Record(MakeRecord(0xaa, 10));
  recorder.Record(MakeRecord(0xbb, 20));

  std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 0);
  EXPECT_EQ(records[1].seq, 1);
  EXPECT_GT(records[0].nanos, 0);
  EXPECT_GE(records[1].nanos, records[0].nanos);
  EXPECT_EQ(records[0].spec_digest, 0xaau);
  EXPECT_EQ(records[1].spec_digest, 0xbbu);
  EXPECT_EQ(recorder.total_recorded(), 2);
}

TEST(FlightRecorderTest, RingWrapsKeepingNewestOldestFirst) {
  FlightRecorderOptions options;
  options.capacity = 4;
  FlightRecorder recorder(options);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(MakeRecord(static_cast<uint64_t>(i), i));
  }

  // Only the newest 4 survive, returned oldest first.
  std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(records[static_cast<size_t>(i)].seq, 6 + i);
    EXPECT_EQ(records[static_cast<size_t>(i)].spec_digest,
              static_cast<uint64_t>(6 + i));
  }
  // The counter keeps the true total, not the retained count.
  EXPECT_EQ(recorder.total_recorded(), 10);
}

TEST(FlightRecorderTest, CapacityZeroDisablesCapture) {
  FlightRecorderOptions options;
  options.capacity = 0;
  options.slow_query_nanos = 1;
  FlightRecorder recorder(options);
  recorder.Record(MakeRecord(0x1, 1000));
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.total_recorded(), 0);
  EXPECT_FALSE(recorder.ConsumePromotion(0x1));
}

TEST(FlightRecorderTest, SlowQueryPromotionConsumesExactlyOnce) {
  FlightRecorderOptions options;
  options.slow_query_nanos = 1000;
  FlightRecorder recorder(options);

  recorder.Record(MakeRecord(0xfa57, 999));  // Below threshold: no flag.
  EXPECT_EQ(recorder.slow_queries(), 0);
  EXPECT_FALSE(recorder.ConsumePromotion(0xfa57));

  recorder.Record(MakeRecord(0x510, 1000));  // At threshold: flagged.
  EXPECT_EQ(recorder.slow_queries(), 1);
  EXPECT_TRUE(recorder.ConsumePromotion(0x510));
  EXPECT_FALSE(recorder.ConsumePromotion(0x510));  // Consumed.

  // A later slow occurrence re-arms the same digest.
  recorder.Record(MakeRecord(0x510, 5000));
  EXPECT_EQ(recorder.slow_queries(), 2);
  EXPECT_TRUE(recorder.ConsumePromotion(0x510));
}

TEST(FlightRecorderTest, ThresholdZeroDisablesPromotion) {
  FlightRecorder recorder;  // Default slow_query_nanos = 0.
  recorder.Record(MakeRecord(0x1, 1'000'000'000));
  EXPECT_EQ(recorder.slow_queries(), 0);
  EXPECT_FALSE(recorder.ConsumePromotion(0x1));
}

TEST(FlightRecorderTest, PendingPromotionsAreBounded) {
  FlightRecorderOptions options;
  options.slow_query_nanos = 1;
  options.max_pending_promotions = 2;
  FlightRecorder recorder(options);
  for (uint64_t digest = 1; digest <= 5; ++digest) {
    recorder.Record(MakeRecord(digest, 100));
  }
  // All five counted as slow, but only the first two queued promotions.
  EXPECT_EQ(recorder.slow_queries(), 5);
  EXPECT_TRUE(recorder.ConsumePromotion(1));
  EXPECT_TRUE(recorder.ConsumePromotion(2));
  EXPECT_FALSE(recorder.ConsumePromotion(3));
  EXPECT_FALSE(recorder.ConsumePromotion(4));
  EXPECT_FALSE(recorder.ConsumePromotion(5));
}

TEST(FlightRecorderTest, ResizeClearsRingButKeepsCounters) {
  FlightRecorderOptions options;
  options.capacity = 8;
  options.slow_query_nanos = 1;
  FlightRecorder recorder(options);
  recorder.Record(MakeRecord(0x1, 100));
  recorder.Record(MakeRecord(0x2, 100));
  EXPECT_EQ(recorder.Snapshot().size(), 2u);

  options.capacity = 16;
  recorder.SetOptions(options);
  EXPECT_TRUE(recorder.Snapshot().empty());
  // Counters and queued promotions survive the resize.
  EXPECT_EQ(recorder.total_recorded(), 2);
  EXPECT_EQ(recorder.slow_queries(), 2);
  EXPECT_TRUE(recorder.ConsumePromotion(0x1));

  // Same capacity: the ring is left alone.
  recorder.Record(MakeRecord(0x3, 100));
  recorder.SetOptions(options);
  EXPECT_EQ(recorder.Snapshot().size(), 1u);
}

TEST(FlightRecorderTest, SnapshotStaysOldestFirstAcrossResize) {
  FlightRecorderOptions options;
  options.capacity = 4;
  FlightRecorder recorder(options);
  for (int i = 0; i < 6; ++i) {  // Wrap the first ring (seqs 0..5).
    recorder.Record(MakeRecord(static_cast<uint64_t>(i), i));
  }

  // Shrink: the ring clears, and the refill must place records by the
  // post-resize base — during the refill AND after the new ring wraps,
  // Snapshot stays strictly oldest-first (seqs continue from 6).
  options.capacity = 3;
  recorder.SetOptions(options);
  for (int i = 6; i < 8; ++i) {  // Partial refill: 2 of 3 slots.
    recorder.Record(MakeRecord(static_cast<uint64_t>(i), i));
  }
  std::vector<FlightRecord> partial = recorder.Snapshot();
  ASSERT_EQ(partial.size(), 2u);
  EXPECT_EQ(partial[0].seq, 6);
  EXPECT_EQ(partial[1].seq, 7);

  for (int i = 8; i < 13; ++i) {  // Fill and wrap the resized ring.
    recorder.Record(MakeRecord(static_cast<uint64_t>(i), i));
  }
  std::vector<FlightRecord> wrapped = recorder.Snapshot();
  ASSERT_EQ(wrapped.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(wrapped[static_cast<size_t>(i)].seq, 10 + i);
    EXPECT_EQ(wrapped[static_cast<size_t>(i)].spec_digest,
              static_cast<uint64_t>(10 + i));
  }
}

TEST(FlightRecorderTest, ToJsonCarriesCountersAndHexDigests) {
  FlightRecorderOptions options;
  options.capacity = 4;
  options.slow_query_nanos = 50;
  FlightRecorder recorder(options);
  FlightRecord record = MakeRecord(0xdeadbeef, 100);
  record.batch_seq = 7;
  record.batch_width = 3;
  record.traced = true;
  record.status = StatusCode::kNotFound;
  recorder.Record(record);

  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"capacity\":4"), std::string::npos);
  EXPECT_NE(json.find("\"total_recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"slow_queries\":1"), std::string::npos);
  // uint64 digests render as fixed-width hex strings, not JSON numbers.
  EXPECT_NE(json.find("\"digest\":\"00000000deadbeef\""), std::string::npos);
  EXPECT_NE(json.find("\"batch_seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"batch_width\":3"), std::string::npos);
  EXPECT_NE(json.find("\"traced\":true"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"NotFound\""), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace adaskip
