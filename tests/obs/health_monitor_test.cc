#include "adaskip/obs/health_monitor.h"

#include <gtest/gtest.h>

namespace adaskip {
namespace obs {
namespace {

HealthMonitorOptions SmallWindows() {
  HealthMonitorOptions options;
  options.window_queries = 4;
  options.min_windows = 2;
  options.degrade_drop = 0.15;
  options.adapting_cost_fraction = 0.05;
  options.adapting_skip_delta = 0.02;
  return options;
}

// Feeds one full window of identical queries.
void FeedWindow(IndexHealthMonitor* monitor, std::string_view scope,
                int64_t* nanos, double skip, int64_t adapt_nanos = 0,
                int64_t total_nanos = 1000) {
  for (int i = 0; i < 4; ++i) {
    monitor->RecordQuery(scope, (*nanos)++, skip, adapt_nanos, total_nanos);
  }
}

TEST(HealthMonitorTest, UnknownScopeIsHealthyDefault) {
  IndexHealthMonitor monitor(SmallWindows());
  IndexHealth health = monitor.Health("t.x");
  EXPECT_EQ(health.verdict, HealthVerdict::kHealthy);
  EXPECT_EQ(health.queries_observed, 0);
  EXPECT_TRUE(monitor.Report().empty());
}

TEST(HealthMonitorTest, WindowsCloseAtConfiguredQueryCount) {
  IndexHealthMonitor monitor(SmallWindows());
  int64_t nanos = 0;
  for (int i = 0; i < 3; ++i) {
    monitor.RecordQuery("t.x", nanos++, 0.9, 0, 1000);
  }
  EXPECT_EQ(monitor.Health("t.x").windows_completed, 0);
  monitor.RecordQuery("t.x", nanos++, 0.9, 0, 1000);
  IndexHealth health = monitor.Health("t.x");
  EXPECT_EQ(health.windows_completed, 1);
  EXPECT_EQ(health.queries_observed, 4);
  EXPECT_DOUBLE_EQ(health.last_window_skip, 0.9);
  EXPECT_DOUBLE_EQ(health.best_window_skip, 0.9);
}

TEST(HealthMonitorTest, StableSkipStaysHealthy) {
  IndexHealthMonitor monitor(SmallWindows());
  int64_t nanos = 0;
  for (int w = 0; w < 4; ++w) {
    FeedWindow(&monitor, "t.x", &nanos, 0.9);
  }
  EXPECT_EQ(monitor.Health("t.x").verdict, HealthVerdict::kHealthy);
}

TEST(HealthMonitorTest, SkipCollapseTurnsDegradedAfterMinWindows) {
  IndexHealthMonitor monitor(SmallWindows());
  int64_t nanos = 0;
  FeedWindow(&monitor, "t.x", &nanos, 0.9);
  // One completed window < min_windows: the collapse may not be judged
  // yet.
  FeedWindow(&monitor, "t.x", &nanos, 0.3);
  EXPECT_EQ(monitor.Health("t.x").verdict, HealthVerdict::kDegraded);
  IndexHealth health = monitor.Health("t.x");
  EXPECT_DOUBLE_EQ(health.best_window_skip, 0.9);
  EXPECT_DOUBLE_EQ(health.last_window_skip, 0.3);
}

TEST(HealthMonitorTest, FirstWindowAloneIsNeverDegraded) {
  IndexHealthMonitor monitor(SmallWindows());
  int64_t nanos = 0;
  FeedWindow(&monitor, "t.x", &nanos, 0.1);
  EXPECT_EQ(monitor.Health("t.x").verdict, HealthVerdict::kHealthy);
}

TEST(HealthMonitorTest, AdaptationSpendReadsAsAdaptingNotDegraded) {
  IndexHealthMonitor monitor(SmallWindows());
  int64_t nanos = 0;
  FeedWindow(&monitor, "t.x", &nanos, 0.9);
  // Skip collapsed, but 20% of query time goes to adaptation: the index
  // is visibly fighting back, so the verdict is kAdapting.
  FeedWindow(&monitor, "t.x", &nanos, 0.3, /*adapt_nanos=*/200);
  EXPECT_EQ(monitor.Health("t.x").verdict, HealthVerdict::kAdapting);
}

TEST(HealthMonitorTest, RisingSkipReadsAsAdapting) {
  IndexHealthMonitor monitor(SmallWindows());
  int64_t nanos = 0;
  FeedWindow(&monitor, "t.x", &nanos, 0.5);
  FeedWindow(&monitor, "t.x", &nanos, 0.6);
  EXPECT_EQ(monitor.Health("t.x").verdict, HealthVerdict::kAdapting);
}

TEST(HealthMonitorTest, RecoveryReturnsToHealthy) {
  IndexHealthMonitor monitor(SmallWindows());
  int64_t nanos = 0;
  FeedWindow(&monitor, "t.x", &nanos, 0.9);
  FeedWindow(&monitor, "t.x", &nanos, 0.3);
  ASSERT_EQ(monitor.Health("t.x").verdict, HealthVerdict::kDegraded);
  FeedWindow(&monitor, "t.x", &nanos, 0.88);  // Climb back (kAdapting)...
  FeedWindow(&monitor, "t.x", &nanos, 0.89);  // ...then stabilize.
  EXPECT_EQ(monitor.Health("t.x").verdict, HealthVerdict::kHealthy);
}

TEST(HealthMonitorTest, ScopesAreIndependentAndReportIsSorted) {
  IndexHealthMonitor monitor(SmallWindows());
  int64_t nanos = 0;
  FeedWindow(&monitor, "t.y", &nanos, 0.9);
  FeedWindow(&monitor, "t.x", &nanos, 0.9);
  FeedWindow(&monitor, "t.y", &nanos, 0.3);
  std::vector<IndexHealth> report = monitor.Report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].scope, "t.x");
  EXPECT_EQ(report[1].scope, "t.y");
  EXPECT_EQ(report[0].verdict, HealthVerdict::kHealthy);
  EXPECT_EQ(report[1].verdict, HealthVerdict::kDegraded);
}

TEST(HealthMonitorTest, CompletedWindowsFeedTheSeries) {
  IndexHealthMonitor monitor(SmallWindows());
  int64_t nanos = 0;
  FeedWindow(&monitor, "t.x", &nanos, 0.9, /*adapt_nanos=*/100);
  FeedWindow(&monitor, "t.x", &nanos, 0.5, /*adapt_nanos=*/100);
  std::vector<SeriesPoint> skip = monitor.series().Series("t.x.window_skip");
  ASSERT_EQ(skip.size(), 2u);
  EXPECT_DOUBLE_EQ(skip[0].value, 0.9);
  EXPECT_DOUBLE_EQ(skip[1].value, 0.5);
  std::vector<SeriesPoint> cost =
      monitor.series().Series("t.x.window_adapt_cost");
  ASSERT_EQ(cost.size(), 2u);
  EXPECT_DOUBLE_EQ(cost[0].value, 0.1);
}

TEST(HealthMonitorTest, ToJsonListsEveryScope) {
  IndexHealthMonitor monitor(SmallWindows());
  int64_t nanos = 0;
  FeedWindow(&monitor, "t.x", &nanos, 0.9);
  const std::string json = monitor.ToJson();
  EXPECT_NE(json.find("\"t.x\""), std::string::npos) << json;
  EXPECT_NE(json.find("healthy"), std::string::npos) << json;
}

TEST(HealthMonitorTest, VerdictNamesAreStable) {
  EXPECT_EQ(HealthVerdictToString(HealthVerdict::kHealthy), "healthy");
  EXPECT_EQ(HealthVerdictToString(HealthVerdict::kAdapting), "adapting");
  EXPECT_EQ(HealthVerdictToString(HealthVerdict::kDegraded), "degraded");
}

}  // namespace
}  // namespace obs
}  // namespace adaskip
