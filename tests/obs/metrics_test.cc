#include "adaskip/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adaskip/util/thread_pool.h"

namespace adaskip::obs {
namespace {

TEST(CounterTest, AddAndIncrement) {
  Counter& c = MetricsRegistry::Global().RegisterCounter(
      "test.counter.add", "test counter");
  const int64_t before = c.value();
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), before + 42);
}

TEST(CounterTest, RegistrationIsIdempotentByName) {
  Counter& a = MetricsRegistry::Global().RegisterCounter(
      "test.counter.idempotent", "help");
  Counter& b = MetricsRegistry::Global().RegisterCounter(
      "test.counter.idempotent", "different help ignored");
  EXPECT_EQ(&a, &b);
}

TEST(HistogramTest, ObserveBucketsByPowerOfTwo) {
  HistogramMetric& h = MetricsRegistry::Global().RegisterHistogram(
      "test.histogram.buckets", "test histogram");
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1024);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 0 + 1 + 2 + 3 + 1024);
  std::vector<int64_t> buckets = h.BucketCounts();
  // 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 1024 -> bucket 11.
  EXPECT_EQ(buckets[0], 1);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 2);
  EXPECT_EQ(buckets[11], 1);
}

TEST(HistogramTest, ApproxPercentileIsMonotone) {
  HistogramMetric& h = MetricsRegistry::Global().RegisterHistogram(
      "test.histogram.percentile", "test histogram");
  for (int64_t v = 1; v <= 1000; ++v) h.Observe(v);
  const int64_t p50 = h.ApproxPercentile(50);
  const int64_t p99 = h.ApproxPercentile(99);
  EXPECT_GT(p50, 0);
  EXPECT_LE(p50, p99);
  // p99 of 1..1000 lands in the top power-of-two bucket (512..1023).
  EXPECT_GE(p99, 512);
}

TEST(RegistryTest, SnapshotContainsRegisteredMetrics) {
  MetricsRegistry::Global()
      .RegisterCounter("test.snapshot.counter", "help")
      .Add(7);
  MetricsRegistry::Global()
      .RegisterHistogram("test.snapshot.histogram", "help")
      .Observe(3);
  bool saw_counter = false;
  bool saw_histogram = false;
  for (const MetricSample& sample : MetricsRegistry::Global().Snapshot()) {
    if (sample.name == "test.snapshot.counter") {
      saw_counter = true;
      EXPECT_GE(sample.value, 7);
    }
    if (sample.name == "test.snapshot.histogram") {
      saw_histogram = true;
      EXPECT_EQ(sample.kind, MetricSample::Kind::kHistogram);
      EXPECT_GE(sample.value, 1);  // Observation count for histograms.
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_histogram);
  EXPECT_GE(MetricsRegistry::Global().CounterValue("test.snapshot.counter"),
            7);
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("test.snapshot.missing"),
            0);
}

TEST(RegistryTest, RenderTextMentionsNamesAndValues) {
  MetricsRegistry::Global()
      .RegisterCounter("test.render.counter", "rendered help")
      .Add(5);
  std::string text = MetricsRegistry::Global().RenderText();
  EXPECT_NE(text.find("test.render.counter"), std::string::npos);
  EXPECT_NE(text.find("rendered help"), std::string::npos);
}

TEST(RegistryTest, InstrumentMacroBindsOnce) {
  auto bump = [] {
    ADASKIP_METRIC_COUNTER(events, "test.macro.counter", "macro-bound");
    events.Increment();
  };
  const int64_t before =
      MetricsRegistry::Global().CounterValue("test.macro.counter");
  bump();
  bump();
  bump();
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("test.macro.counter"),
            before + 3);
}

TEST(GaugeTest, SetAndSnapshot) {
  Gauge& g = MetricsRegistry::Global().RegisterGauge(
      "test.gauge.depth", "test gauge");
  g.Set(42);
  EXPECT_EQ(g.value(), 42);
  EXPECT_EQ(MetricsRegistry::Global().GaugeValue("test.gauge.depth"), 42);
  g.Set(7);  // Gauges move both ways, unlike counters.
  EXPECT_EQ(g.value(), 7);

  bool found = false;
  for (const MetricSample& sample : MetricsRegistry::Global().Snapshot()) {
    if (sample.name != "test.gauge.depth") continue;
    found = true;
    EXPECT_EQ(sample.kind, MetricSample::Kind::kGauge);
    EXPECT_EQ(sample.value, 7);
  }
  EXPECT_TRUE(found);
}

TEST(HistogramTest, SnapshotCarriesApproximatePercentiles) {
  HistogramMetric& h = MetricsRegistry::Global().RegisterHistogram(
      "test.histogram.percentiles", "latency-shaped distribution");
  // 90 fast observations (bucket [8,16), upper bound 15) and 10 slow
  // ones (bucket [512,1024), upper bound 1023): the median sits in the
  // fast bucket, the tail percentiles in the slow one.
  for (int i = 0; i < 90; ++i) h.Observe(10);
  for (int i = 0; i < 10; ++i) h.Observe(1000);

  EXPECT_EQ(h.ApproxPercentile(50), 15);
  EXPECT_EQ(h.ApproxPercentile(95), 1023);
  EXPECT_EQ(h.ApproxPercentile(99), 1023);

  bool found = false;
  for (const MetricSample& sample : MetricsRegistry::Global().Snapshot()) {
    if (sample.name != "test.histogram.percentiles") continue;
    found = true;
    EXPECT_EQ(sample.kind, MetricSample::Kind::kHistogram);
    EXPECT_EQ(sample.value, 100);
    EXPECT_EQ(sample.sum, 90 * 10 + 10 * 1000);
    EXPECT_DOUBLE_EQ(sample.mean, static_cast<double>(sample.sum) / 100.0);
    EXPECT_EQ(sample.p50, 15);
    EXPECT_EQ(sample.p95, 1023);
    EXPECT_EQ(sample.p99, 1023);
  }
  EXPECT_TRUE(found);
}

TEST(HistogramTest, PercentileEdgeCases) {
  HistogramMetric& h = MetricsRegistry::Global().RegisterHistogram(
      "test.histogram.percentile_edges", "edge cases");
  EXPECT_EQ(h.ApproxPercentile(95), 0);  // Empty: no observations.
  h.Observe(0);
  EXPECT_EQ(h.ApproxPercentile(50), 0);  // Bucket 0 reports 0.
  h.Observe(100);
  EXPECT_EQ(h.ApproxPercentile(200.0), 127);  // Clamped to p100.
  EXPECT_EQ(h.ApproxPercentile(-5.0), 0);     // Clamped to the low rank.
}

TEST(RenderPrometheusTest, RendersTypedFamiliesWithSanitizedNames) {
  Counter& c = MetricsRegistry::Global().RegisterCounter(
      "test.prom.requests", "requests seen");
  c.Increment();
  Gauge& g = MetricsRegistry::Global().RegisterGauge(
      "test.prom.depth", "current depth");
  g.Set(3);

  const std::string out = MetricsRegistry::Global().RenderPrometheus();
  // Dots sanitize to underscores; every family gets # HELP and # TYPE.
  EXPECT_NE(out.find("# HELP test_prom_requests requests seen"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE test_prom_requests counter"), std::string::npos);
  EXPECT_NE(out.find("# TYPE test_prom_depth gauge"), std::string::npos);
  EXPECT_NE(out.find("test_prom_depth 3\n"), std::string::npos);
  EXPECT_EQ(out.find("test.prom"), std::string::npos);
}

TEST(RenderPrometheusTest, RendersCumulativeHistogramSeries) {
  HistogramMetric& h = MetricsRegistry::Global().RegisterHistogram(
      "test.prom.latency", "latency");
  h.Observe(1);     // Bucket [1,2), le="1".
  h.Observe(10);    // Bucket [8,16), le="15".
  h.Observe(10);

  const std::string out = MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(out.find("# TYPE test_prom_latency histogram"),
            std::string::npos);
  // Buckets are cumulative over the log2 upper bounds and terminate at
  // +Inf, which agrees with _count.
  EXPECT_NE(out.find("test_prom_latency_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("test_prom_latency_bucket{le=\"15\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("test_prom_latency_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("test_prom_latency_sum 21\n"), std::string::npos);
  EXPECT_NE(out.find("test_prom_latency_count 3\n"), std::string::npos);
}

// The fast path is relaxed-atomic: concurrent adds from pool workers must
// not lose updates (and run clean under TSan).
TEST(ParallelMetricsTest, ConcurrentAddsDoNotLoseUpdates) {
  Counter& c = MetricsRegistry::Global().RegisterCounter(
      "test.parallel.counter", "contended counter");
  HistogramMetric& h = MetricsRegistry::Global().RegisterHistogram(
      "test.parallel.histogram", "contended histogram");
  const int64_t counter_before = c.value();
  const int64_t hist_before = h.count();
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](int64_t, int) {
    for (int i = 0; i < kAddsPerTask; ++i) {
      c.Increment();
      h.Observe(i);
    }
  });
  EXPECT_EQ(c.value(), counter_before + kTasks * kAddsPerTask);
  EXPECT_EQ(h.count(), hist_before + kTasks * kAddsPerTask);
}

}  // namespace
}  // namespace adaskip::obs
