#include "adaskip/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adaskip/util/thread_pool.h"

namespace adaskip::obs {
namespace {

TEST(CounterTest, AddAndIncrement) {
  Counter& c = MetricsRegistry::Global().RegisterCounter(
      "test.counter.add", "test counter");
  const int64_t before = c.value();
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), before + 42);
}

TEST(CounterTest, RegistrationIsIdempotentByName) {
  Counter& a = MetricsRegistry::Global().RegisterCounter(
      "test.counter.idempotent", "help");
  Counter& b = MetricsRegistry::Global().RegisterCounter(
      "test.counter.idempotent", "different help ignored");
  EXPECT_EQ(&a, &b);
}

TEST(HistogramTest, ObserveBucketsByPowerOfTwo) {
  HistogramMetric& h = MetricsRegistry::Global().RegisterHistogram(
      "test.histogram.buckets", "test histogram");
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1024);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 0 + 1 + 2 + 3 + 1024);
  std::vector<int64_t> buckets = h.BucketCounts();
  // 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 1024 -> bucket 11.
  EXPECT_EQ(buckets[0], 1);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 2);
  EXPECT_EQ(buckets[11], 1);
}

TEST(HistogramTest, ApproxPercentileIsMonotone) {
  HistogramMetric& h = MetricsRegistry::Global().RegisterHistogram(
      "test.histogram.percentile", "test histogram");
  for (int64_t v = 1; v <= 1000; ++v) h.Observe(v);
  const int64_t p50 = h.ApproxPercentile(50);
  const int64_t p99 = h.ApproxPercentile(99);
  EXPECT_GT(p50, 0);
  EXPECT_LE(p50, p99);
  // p99 of 1..1000 lands in the top power-of-two bucket (512..1023).
  EXPECT_GE(p99, 512);
}

TEST(RegistryTest, SnapshotContainsRegisteredMetrics) {
  MetricsRegistry::Global()
      .RegisterCounter("test.snapshot.counter", "help")
      .Add(7);
  MetricsRegistry::Global()
      .RegisterHistogram("test.snapshot.histogram", "help")
      .Observe(3);
  bool saw_counter = false;
  bool saw_histogram = false;
  for (const MetricSample& sample : MetricsRegistry::Global().Snapshot()) {
    if (sample.name == "test.snapshot.counter") {
      saw_counter = true;
      EXPECT_GE(sample.value, 7);
    }
    if (sample.name == "test.snapshot.histogram") {
      saw_histogram = true;
      EXPECT_EQ(sample.kind, MetricSample::Kind::kHistogram);
      EXPECT_GE(sample.value, 1);  // Observation count for histograms.
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_histogram);
  EXPECT_GE(MetricsRegistry::Global().CounterValue("test.snapshot.counter"),
            7);
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("test.snapshot.missing"),
            0);
}

TEST(RegistryTest, RenderTextMentionsNamesAndValues) {
  MetricsRegistry::Global()
      .RegisterCounter("test.render.counter", "rendered help")
      .Add(5);
  std::string text = MetricsRegistry::Global().RenderText();
  EXPECT_NE(text.find("test.render.counter"), std::string::npos);
  EXPECT_NE(text.find("rendered help"), std::string::npos);
}

TEST(RegistryTest, InstrumentMacroBindsOnce) {
  auto bump = [] {
    ADASKIP_METRIC_COUNTER(events, "test.macro.counter", "macro-bound");
    events.Increment();
  };
  const int64_t before =
      MetricsRegistry::Global().CounterValue("test.macro.counter");
  bump();
  bump();
  bump();
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("test.macro.counter"),
            before + 3);
}

// The fast path is relaxed-atomic: concurrent adds from pool workers must
// not lose updates (and run clean under TSan).
TEST(ParallelMetricsTest, ConcurrentAddsDoNotLoseUpdates) {
  Counter& c = MetricsRegistry::Global().RegisterCounter(
      "test.parallel.counter", "contended counter");
  HistogramMetric& h = MetricsRegistry::Global().RegisterHistogram(
      "test.parallel.histogram", "contended histogram");
  const int64_t counter_before = c.value();
  const int64_t hist_before = h.count();
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](int64_t, int) {
    for (int i = 0; i < kAddsPerTask; ++i) {
      c.Increment();
      h.Observe(i);
    }
  });
  EXPECT_EQ(c.value(), counter_before + kTasks * kAddsPerTask);
  EXPECT_EQ(h.count(), hist_before + kTasks * kAddsPerTask);
}

}  // namespace
}  // namespace adaskip::obs
