#include "adaskip/obs/query_trace.h"

#include <gtest/gtest.h>

#include <string>

namespace adaskip::obs {
namespace {

TEST(TraceLevelTest, ValidityAndNames) {
  EXPECT_TRUE(TraceLevelIsValid(TraceLevel::kOff));
  EXPECT_TRUE(TraceLevelIsValid(TraceLevel::kSummary));
  EXPECT_TRUE(TraceLevelIsValid(TraceLevel::kDetail));
  EXPECT_FALSE(TraceLevelIsValid(static_cast<TraceLevel>(3)));
  EXPECT_FALSE(TraceLevelIsValid(static_cast<TraceLevel>(-1)));
  EXPECT_EQ(TraceLevelToString(TraceLevel::kOff), "off");
  EXPECT_EQ(TraceLevelToString(TraceLevel::kSummary), "summary");
  EXPECT_EQ(TraceLevelToString(TraceLevel::kDetail), "detail");
}

TEST(TraceSpanTest, SetAttrFindChild) {
  TraceSpan span("probe");
  span.Set("index", "zonemap")
      .Set("zones_candidate", int64_t{12})
      .Set("fraction", 0.25)
      .Set("bypassed", true);
  EXPECT_EQ(span.Attr("index"), "zonemap");
  EXPECT_EQ(span.Attr("zones_candidate"), "12");
  EXPECT_EQ(span.Attr("bypassed"), "true");
  EXPECT_EQ(span.Attr("missing"), "");
  EXPECT_EQ(span.Attr("fraction"), "0.250");

  TraceSpan child("scan");
  child.Set("rows_scanned", int64_t{100});
  span.AddChild(std::move(child));
  ASSERT_NE(span.FindChild("scan"), nullptr);
  EXPECT_EQ(span.FindChild("scan")->Attr("rows_scanned"), "100");
  EXPECT_EQ(span.FindChild("adapt"), nullptr);
}

TEST(QueryTraceTest, ToTextRendersIndentedTree) {
  QueryTrace trace(TraceLevel::kSummary);
  trace.root().Set("query", "COUNT WHERE x BETWEEN 1 AND 2");
  trace.root().duration_nanos = 123456;
  TraceSpan probe("probe");
  probe.Set("zones_candidate", int64_t{3}).Set("zones_skipped", int64_t{97});
  trace.root().AddChild(std::move(probe));
  TraceSpan scan("scan");
  scan.Set("rows_scanned", int64_t{300});
  trace.root().AddChild(std::move(scan));

  std::string text = trace.ToText();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("probe"), std::string::npos);
  EXPECT_NE(text.find("zones_candidate=3"), std::string::npos);
  EXPECT_NE(text.find("zones_skipped=97"), std::string::npos);
  // Children are indented under the root.
  EXPECT_NE(text.find("\n  "), std::string::npos);
}

TEST(QueryTraceTest, ToJsonIsWellFormedAndEscaped) {
  QueryTrace trace(TraceLevel::kDetail);
  trace.root().Set("query", "has \"quotes\" and\nnewline\tand\\slash");
  TraceSpan child("scan");
  child.duration_nanos = 42;
  trace.root().AddChild(std::move(child));

  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"trace_level\":\"detail\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\"duration_nanos\":42"), std::string::npos);
  // No raw control characters escape into the output.
  EXPECT_EQ(json.find('\n'), std::string::npos);

  // Balanced braces/brackets outside of strings — cheap well-formedness
  // check that catches missed separators.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(QueryTraceTest, ControlCharactersEscapeAsUnicode) {
  QueryTrace trace(TraceLevel::kDetail);
  // Split literals: "\x01b" would otherwise parse as one hex escape.
  trace.root().Set("payload", std::string("a\x01"
                                          "b\x1f"
                                          "c\rd"));
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\\u0001"), std::string::npos) << json;
  EXPECT_NE(json.find("\\u001f"), std::string::npos) << json;
  EXPECT_NE(json.find("\\r"), std::string::npos) << json;
  // None of the raw control bytes leak through.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  EXPECT_EQ(json.find('\x1f'), std::string::npos);
  EXPECT_EQ(json.find('\r'), std::string::npos);
}

TEST(QueryTraceTest, AttributeKeysAreEscapedToo) {
  QueryTrace trace(TraceLevel::kSummary);
  trace.root().Set("weird\"key", "value");
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("weird\\\"key"), std::string::npos) << json;
}

TEST(QueryTraceTest, DetailChildCapLeavesMarkerNotOverflow) {
  // The executor caps per-range children at kMaxDetailChildren and sets
  // "detail_elided" instead of growing without bound; this exercises the
  // rendering side of that contract — a span at the cap with the marker
  // still renders every child plus the marker.
  QueryTrace trace(TraceLevel::kDetail);
  TraceSpan scan("scan");
  for (int64_t i = 0; i < QueryTrace::kMaxDetailChildren; ++i) {
    TraceSpan child("range");
    child.Set("begin", i * 10).Set("end", i * 10 + 10);
    scan.AddChild(std::move(child));
  }
  scan.Set("detail_elided", int64_t{936});
  trace.root().AddChild(std::move(scan));

  const TraceSpan* rendered = trace.root().FindChild("scan");
  ASSERT_NE(rendered, nullptr);
  EXPECT_EQ(static_cast<int64_t>(rendered->children.size()),
            QueryTrace::kMaxDetailChildren);
  EXPECT_EQ(rendered->Attr("detail_elided"), "936");
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"detail_elided\":\"936\""), std::string::npos)
      << json.substr(0, 200);
}

}  // namespace
}  // namespace adaskip::obs
