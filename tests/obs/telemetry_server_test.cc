#include "adaskip/obs/telemetry_server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "adaskip/obs/event_journal.h"
#include "adaskip/obs/flight_recorder.h"
#include "adaskip/obs/health_monitor.h"
#include "adaskip/obs/metrics.h"
#include "adaskip/util/background_thread.h"
#include "adaskip/util/logging.h"
#include "adaskip/util/socket.h"

namespace adaskip {
namespace obs {
namespace {

// The HTTP status code of a raw response ("HTTP/1.1 404 ..." -> 404).
int StatusOf(const std::string& response) {
  if (response.size() < 12 || response.compare(0, 9, "HTTP/1.1 ") != 0) {
    return -1;
  }
  return std::atoi(response.c_str() + 9);
}

// The body of a raw response (everything past the header terminator).
std::string BodyOf(const std::string& response) {
  const size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}

std::unique_ptr<TelemetryServer> StartEphemeral(
    TelemetryServerOptions options = {}) {
  options.port = 0;
  Result<std::unique_ptr<TelemetryServer>> server =
      TelemetryServer::Start(options);
  ADASKIP_CHECK_OK(server.status());
  return std::move(*server);
}

TEST(TelemetryServerOptionsTest, ValidateRejectsBadKnobs) {
  EXPECT_TRUE(ValidateTelemetryServerOptions({}).ok());

  TelemetryServerOptions bad_port;
  bad_port.port = 65536;
  EXPECT_EQ(ValidateTelemetryServerOptions(bad_port).code(),
            StatusCode::kInvalidArgument);

  TelemetryServerOptions bad_budget;
  bad_budget.max_request_bytes = 63;
  EXPECT_EQ(ValidateTelemetryServerOptions(bad_budget).code(),
            StatusCode::kInvalidArgument);

  TelemetryServerOptions bad_poll;
  bad_poll.poll_millis = 0;
  EXPECT_EQ(ValidateTelemetryServerOptions(bad_poll).code(),
            StatusCode::kInvalidArgument);

  TelemetryServerOptions bad_io_timeout;
  bad_io_timeout.io_timeout_millis = 0;
  EXPECT_EQ(ValidateTelemetryServerOptions(bad_io_timeout).code(),
            StatusCode::kInvalidArgument);
}

TEST(TelemetryServerTest, ServesRegisteredHandlerOnEphemeralPort) {
  auto server = StartEphemeral();
  ASSERT_GT(server->port(), 0);
  server->RegisterHandler("/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });

  Result<std::string> response = HttpGet(server->port(), "/ping");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(StatusOf(*response), 200);
  EXPECT_EQ(BodyOf(*response), "pong");
  EXPECT_NE(response->find("Connection: close"), std::string::npos);
  EXPECT_EQ(server->requests_served(), 1);

  server->Stop();
  server->Stop();  // Idempotent.
}

TEST(TelemetryServerTest, RootListsEndpointsAndUnknownPathIs404) {
  auto server = StartEphemeral();
  server->RegisterHandler("/ping", [](const HttpRequest&) {
    return HttpResponse();
  });

  Result<std::string> index = HttpGet(server->port(), "/");
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_EQ(StatusOf(*index), 200);
  EXPECT_NE(index->find("/ping"), std::string::npos);

  Result<std::string> missing = HttpGet(server->port(), "/nope");
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_EQ(StatusOf(*missing), 404);
  EXPECT_EQ(server->requests_served(), 2);
}

TEST(TelemetryServerTest, MetricsEndpointServesPrometheusText) {
  // Make sure at least one family exists in the process registry.
  Counter& counter = MetricsRegistry::Global().RegisterCounter(
      "test.telemetry.scrapes", "Scrapes observed by this test");
  counter.Increment();

  auto server = StartEphemeral();
  server->RegisterHandler("/metrics", MakeMetricsHandler());

  Result<std::string> response = HttpGet(server->port(), "/metrics");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(StatusOf(*response), 200);
  EXPECT_NE(response->find("text/plain; version=0.0.4"), std::string::npos);
  const std::string body = BodyOf(*response);
  EXPECT_NE(body.find("# TYPE test_telemetry_scrapes counter"),
            std::string::npos);
  EXPECT_NE(body.find("test_telemetry_scrapes "), std::string::npos);
}

TEST(TelemetryServerTest, MalformedRequestLineIs400) {
  auto server = StartEphemeral();
  Result<std::string> response =
      HttpExchange(server->port(), "GARBAGE\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(StatusOf(*response), 400);
}

TEST(TelemetryServerTest, NonGetMethodIs405) {
  auto server = StartEphemeral();
  Result<std::string> response = HttpExchange(
      server->port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(StatusOf(*response), 405);
}

TEST(TelemetryServerTest, NonAbsoluteTargetIs400) {
  auto server = StartEphemeral();
  Result<std::string> response =
      HttpExchange(server->port(), "GET metrics HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(StatusOf(*response), 400);
}

TEST(TelemetryServerTest, OversizedRequestLineIs414) {
  TelemetryServerOptions options;
  options.max_request_bytes = 64;  // The validated minimum.
  auto server = StartEphemeral(options);

  // A request line that blows the byte budget before ever terminating.
  // The server answers 414 and drops the connection; depending on timing
  // the client can see the response or a reset, so the authoritative
  // assertion is server-side.
  const std::string endless_line(512, 'A');
  Result<std::string> response = HttpExchange(server->port(), endless_line);
  if (response.ok() && !response->empty()) {
    EXPECT_EQ(StatusOf(*response), 414);
  }
  // The request was counted either way; the increment may land a moment
  // after the client sees the connection drop.
  for (int i = 0; i < 200 && server->requests_served() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server->requests_served(), 1);
}

// A peer that connects and sends nothing ("nc host port") must not wedge
// the single-threaded accept loop: the I/O deadline drops it, later
// requests are answered, and Stop() stays bounded.
TEST(TelemetryServerTest, IdleConnectionIsDroppedAndServingContinues) {
  TelemetryServerOptions options;
  options.io_timeout_millis = 50;
  auto server = StartEphemeral(options);
  server->RegisterHandler("/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });

  // HttpExchange with an empty request writes nothing and then blocks
  // reading until the peer closes — so returning at all proves the
  // server dropped the silent connection rather than waiting forever.
  Result<std::string> idle = HttpExchange(server->port(), "");
  ASSERT_TRUE(idle.ok()) << idle.status();
  EXPECT_TRUE(idle->empty());  // Dropped without a response.

  // The plane is still alive for real scrapers.
  Result<std::string> response = HttpGet(server->port(), "/ping");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(StatusOf(*response), 200);
  EXPECT_EQ(BodyOf(*response), "pong");

  server->Stop();  // Bounded: no connection can pin the accept loop.
}

// An unterminated-but-parsable request line is still answered once the
// read deadline passes; the 4xx taxonomy applies to what did arrive.
TEST(TelemetryServerTest, HalfSentRequestTimesOutInto400) {
  TelemetryServerOptions options;
  options.io_timeout_millis = 50;
  auto server = StartEphemeral(options);
  Result<std::string> response =
      HttpExchange(server->port(), "GET /nope");  // No CRLF, ever.
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(StatusOf(*response), 400);
}

// Two racing Stop() callers must BOTH block until the accept loop is
// joined — a second caller returning early while the first is still
// joining would let its thread destroy the server under the join. TSan
// (CI filter: Telemetry) watches this interleaving.
TEST(TelemetryServerTest, ConcurrentStopCallersBothWaitForTheJoin) {
  auto server = StartEphemeral();
  {
    BackgroundThread other([&server] { server->Stop(); });
    server->Stop();
  }  // Joining `other` here would hang if either Stop() did.
  server->Stop();  // Still idempotent afterwards.
}

// bind_any is the explicit opt-in for off-host exposure; loopback
// clients are served either way (the default bind is 127.0.0.1, which
// every other test in this file exercises).
TEST(TelemetryServerTest, BindAnyOptInStillServesLoopback) {
  TelemetryServerOptions options;
  options.bind_any = true;
  auto server = StartEphemeral(options);
  server->RegisterHandler("/ping", [](const HttpRequest&) {
    return HttpResponse();
  });
  Result<std::string> response = HttpGet(server->port(), "/ping");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(StatusOf(*response), 200);
}

TEST(TelemetryServerTest, PortAlreadyInUseFailsPrecondition) {
  auto server = StartEphemeral();
  TelemetryServerOptions options;
  options.port = server->port();
  Result<std::unique_ptr<TelemetryServer>> second =
      TelemetryServer::Start(options);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(second.status().message().find("already in use"),
            std::string::npos);
}

TEST(TelemetryServerTest, JournalHandlerServesJsonlTail) {
  EventJournal journal;
  for (int i = 0; i < 5; ++i) {
    JournalEvent event;
    event.kind = EventKind::kIndexAttach;
    event.scope = "t.x" + std::to_string(i);
    journal.AppendEvent(std::move(event));
  }

  auto server = StartEphemeral();
  server->RegisterHandler("/journal", MakeJournalHandler(&journal));

  // Default tail: all five events, one JSON object per line.
  Result<std::string> all = HttpGet(server->port(), "/journal");
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ(StatusOf(*all), 200);
  EXPECT_NE(all->find("application/x-ndjson"), std::string::npos);
  EXPECT_NE(BodyOf(*all).find("t.x0"), std::string::npos);
  EXPECT_NE(BodyOf(*all).find("t.x4"), std::string::npos);

  // ?n=2 keeps only the newest two.
  Result<std::string> tail = HttpGet(server->port(), "/journal?n=2");
  ASSERT_TRUE(tail.ok()) << tail.status();
  const std::string body = BodyOf(*tail);
  EXPECT_EQ(body.find("t.x0"), std::string::npos);
  EXPECT_NE(body.find("t.x3"), std::string::npos);
  EXPECT_NE(body.find("t.x4"), std::string::npos);
}

TEST(TelemetryServerTest, HealthzFlipsTo503WhenAnIndexDegrades) {
  HealthMonitorOptions options;
  options.window_queries = 4;
  options.min_windows = 2;
  IndexHealthMonitor monitor(options);

  auto server = StartEphemeral();
  server->RegisterHandler("/healthz", MakeHealthzHandler(&monitor));

  // Two strong windows: healthy, HTTP 200.
  for (int i = 0; i < 8; ++i) {
    monitor.RecordQuery("t.x", /*nanos=*/i, /*skipped_fraction=*/0.9,
                        /*adapt_nanos=*/0, /*total_nanos=*/1000);
  }
  Result<std::string> healthy = HttpGet(server->port(), "/healthz");
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_EQ(StatusOf(*healthy), 200);
  EXPECT_NE(BodyOf(*healthy).find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(BodyOf(*healthy).find("\"scope\":\"t.x\""), std::string::npos);

  // Skip effectiveness collapses: the verdict degrades and the endpoint
  // flips to 503 so a fleet checker needs only the status code.
  for (int i = 0; i < 8; ++i) {
    monitor.RecordQuery("t.x", /*nanos=*/100 + i, /*skipped_fraction=*/0.3,
                        /*adapt_nanos=*/0, /*total_nanos=*/1000);
  }
  Result<std::string> degraded = HttpGet(server->port(), "/healthz");
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(StatusOf(*degraded), 503);
  EXPECT_NE(BodyOf(*degraded).find("\"status\":\"degraded\""),
            std::string::npos);
}

TEST(TelemetryServerTest, FlightRecorderHandlerServesRingJson) {
  FlightRecorder recorder;
  FlightRecord record;
  record.spec_digest = 0xabc;
  recorder.Record(record);

  auto server = StartEphemeral();
  server->RegisterHandler("/flightrecorder",
                          MakeFlightRecorderHandler(&recorder));

  Result<std::string> response = HttpGet(server->port(), "/flightrecorder");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(StatusOf(*response), 200);
  EXPECT_NE(response->find("application/json"), std::string::npos);
  const std::string body = BodyOf(*response);
  EXPECT_NE(body.find("\"total_recorded\":1"), std::string::npos);
  EXPECT_NE(body.find("\"digest\":\"0000000000000abc\""), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace adaskip
