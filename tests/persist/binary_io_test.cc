#include "adaskip/persist/binary_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace adaskip {
namespace persist {
namespace {

TEST(ScalarTest, RoundTripsEveryWidth) {
  BufferSink sink;
  ASSERT_TRUE(WriteScalar(sink, true).ok());
  ASSERT_TRUE(WriteScalar(sink, static_cast<int8_t>(-7)).ok());
  ASSERT_TRUE(WriteScalar(sink, static_cast<uint8_t>(0xAB)).ok());
  ASSERT_TRUE(WriteScalar(sink, static_cast<int32_t>(-123456)).ok());
  ASSERT_TRUE(
      WriteScalar(sink, std::numeric_limits<int64_t>::min()).ok());
  ASSERT_TRUE(WriteScalar(sink, 3.5f).ok());
  ASSERT_TRUE(WriteScalar(sink, -0.125).ok());

  BufferSource source(sink.buffer());
  bool b = false;
  int8_t i8 = 0;
  uint8_t u8 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  float f = 0;
  double d = 0;
  ASSERT_TRUE(ReadScalar(source, &b).ok());
  ASSERT_TRUE(ReadScalar(source, &i8).ok());
  ASSERT_TRUE(ReadScalar(source, &u8).ok());
  ASSERT_TRUE(ReadScalar(source, &i32).ok());
  ASSERT_TRUE(ReadScalar(source, &i64).ok());
  ASSERT_TRUE(ReadScalar(source, &f).ok());
  ASSERT_TRUE(ReadScalar(source, &d).ok());
  EXPECT_TRUE(b);
  EXPECT_EQ(i8, -7);
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(i32, -123456);
  EXPECT_EQ(i64, std::numeric_limits<int64_t>::min());
  EXPECT_EQ(f, 3.5f);
  EXPECT_EQ(d, -0.125);
  EXPECT_EQ(source.remaining(), 0);
}

TEST(ScalarTest, EncodingIsLittleEndian) {
  BufferSink sink;
  ASSERT_TRUE(WriteScalar(sink, static_cast<uint32_t>(0x01020304)).ok());
  const std::string& bytes = sink.buffer();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(bytes[3]), 0x01);
}

TEST(ScalarTest, BoolByteOutOfRangeIsDataLoss) {
  const std::string bytes("\x02", 1);
  BufferSource source(bytes);
  bool b = false;
  EXPECT_EQ(ReadScalar(source, &b).code(), StatusCode::kDataLoss);
}

TEST(ScalarTest, TruncatedReadIsDataLoss) {
  const std::string bytes("\x01\x02", 2);
  BufferSource source(bytes);
  int64_t value = 0;
  EXPECT_EQ(ReadScalar(source, &value).code(), StatusCode::kDataLoss);
}

TEST(StringTest, RoundTripsIncludingEmbeddedNul) {
  BufferSink sink;
  const std::string payload("col\0umn", 7);
  ASSERT_TRUE(WriteString(sink, payload).ok());
  ASSERT_TRUE(WriteString(sink, "").ok());
  BufferSource source(sink.buffer());
  std::string a;
  std::string b;
  ASSERT_TRUE(ReadString(source, &a).ok());
  ASSERT_TRUE(ReadString(source, &b).ok());
  EXPECT_EQ(a, payload);
  EXPECT_TRUE(b.empty());
}

TEST(StringTest, LengthBeyondSourceIsDataLoss) {
  BufferSink sink;
  // A length field claiming far more bytes than the source holds must be
  // rejected before any allocation happens.
  ASSERT_TRUE(WriteScalar(sink, static_cast<uint64_t>(1) << 40).ok());
  BufferSource source(sink.buffer());
  std::string out;
  EXPECT_EQ(ReadString(source, &out).code(), StatusCode::kDataLoss);
}

TEST(VectorTest, RoundTripsArithmeticTypes) {
  BufferSink sink;
  const std::vector<int64_t> ints = {-1, 0, 1, 1 << 30};
  const std::vector<double> doubles = {0.5, -2.25};
  const std::vector<uint64_t> empty;
  ASSERT_TRUE(WriteVector(sink, ints).ok());
  ASSERT_TRUE(WriteVector(sink, doubles).ok());
  ASSERT_TRUE(WriteVector(sink, empty).ok());
  BufferSource source(sink.buffer());
  std::vector<int64_t> ints_out;
  std::vector<double> doubles_out;
  std::vector<uint64_t> empty_out = {99};
  ASSERT_TRUE(ReadVector(source, &ints_out).ok());
  ASSERT_TRUE(ReadVector(source, &doubles_out).ok());
  ASSERT_TRUE(ReadVector(source, &empty_out).ok());
  EXPECT_EQ(ints_out, ints);
  EXPECT_EQ(doubles_out, doubles);
  EXPECT_TRUE(empty_out.empty());
}

TEST(VectorTest, CountBeyondSourceIsDataLoss) {
  BufferSink sink;
  ASSERT_TRUE(WriteScalar(sink, static_cast<uint64_t>(1000)).ok());
  ASSERT_TRUE(WriteScalar(sink, static_cast<int64_t>(1)).ok());
  BufferSource source(sink.buffer());
  std::vector<int64_t> out;
  EXPECT_EQ(ReadVector(source, &out).code(), StatusCode::kDataLoss);
}

TEST(Crc32Test, MatchesKnownVectorAndChains) {
  // The IEEE 802.3 check value for the ASCII string "123456789".
  const char check[] = "123456789";
  EXPECT_EQ(Crc32(check, 9), 0xCBF43926u);
  const uint32_t part = Crc32(check, 4);
  EXPECT_EQ(Crc32(check + 4, 5, part), 0xCBF43926u);
}

TEST(BlockTest, RoundTripsAndDetectsTampering) {
  const uint32_t tag = FourCC("TEST");
  BufferSink sink;
  ASSERT_TRUE(WriteBlock(sink, tag, "hello block").ok());
  {
    BufferSource source(sink.buffer());
    std::string payload;
    ASSERT_TRUE(ReadBlock(source, tag, &payload).ok());
    EXPECT_EQ(payload, "hello block");
    EXPECT_EQ(source.remaining(), 0);
  }
  {
    // Wrong expected tag.
    BufferSource source(sink.buffer());
    std::string payload;
    EXPECT_EQ(ReadBlock(source, FourCC("OTHR"), &payload).code(),
              StatusCode::kDataLoss);
  }
  {
    // One flipped payload bit fails the CRC.
    std::string tampered = sink.buffer();
    tampered[sizeof(uint32_t) + sizeof(uint64_t) + 2] ^= 0x10;
    BufferSource source(tampered);
    std::string payload;
    EXPECT_EQ(ReadBlock(source, tag, &payload).code(),
              StatusCode::kDataLoss);
  }
  {
    // A stale checksum (payload intact, CRC bytes flipped) also fails.
    std::string tampered = sink.buffer();
    tampered.back() = static_cast<char>(tampered.back() ^ 0x01);
    BufferSource source(tampered);
    std::string payload;
    EXPECT_EQ(ReadBlock(source, tag, &payload).code(),
              StatusCode::kDataLoss);
  }
  {
    // Truncated mid-payload.
    std::string truncated = sink.buffer().substr(0, sink.buffer().size() / 2);
    BufferSource source(truncated);
    std::string payload;
    EXPECT_EQ(ReadBlock(source, tag, &payload).code(),
              StatusCode::kDataLoss);
  }
}

TEST(BlockTest, NearOverflowSizeFieldIsDataLossNotBadAlloc) {
  // A corrupted size in [2^64-4, 2^64-1] wraps `size + sizeof(crc)`; a
  // naive limit check passes and the payload allocation throws. The
  // guard must subtract instead and report kDataLoss.
  const uint32_t tag = FourCC("TEST");
  for (uint64_t delta = 1; delta <= 4; ++delta) {
    BufferSink sink;
    ASSERT_TRUE(WriteScalar(sink, tag).ok());
    ASSERT_TRUE(
        WriteScalar(sink, std::numeric_limits<uint64_t>::max() - delta + 1)
            .ok());
    ASSERT_TRUE(WriteScalar(sink, static_cast<uint32_t>(0)).ok());
    BufferSource source(sink.buffer());
    std::string payload;
    EXPECT_EQ(ReadBlock(source, tag, &payload).code(),
              StatusCode::kDataLoss);
  }
}

TEST(BlockTest, SourceShorterThanCrcIsDataLoss) {
  // remaining() < sizeof(crc) exercises the other side of the subtract-
  // don't-add guard: the unsigned subtraction must not wrap either.
  const uint32_t tag = FourCC("TEST");
  BufferSink sink;
  ASSERT_TRUE(WriteScalar(sink, tag).ok());
  ASSERT_TRUE(WriteScalar(sink, static_cast<uint64_t>(0)).ok());
  const std::string truncated = sink.buffer() + "\x01";  // 1 < sizeof(crc).
  BufferSource source(truncated);
  std::string payload;
  EXPECT_EQ(ReadBlock(source, tag, &payload).code(), StatusCode::kDataLoss);
}

TEST(SnapshotHeaderTest, RoundTripsAndRejectsBadPreamble) {
  BufferSink sink;
  ASSERT_TRUE(WriteSnapshotHeader(sink).ok());
  ASSERT_EQ(sink.buffer().size(), sizeof(kSnapshotMagic) + 1);
  {
    BufferSource source(sink.buffer());
    EXPECT_TRUE(ReadSnapshotHeader(source).ok());
    EXPECT_EQ(source.remaining(), 0);
  }
  {
    std::string bad_magic = sink.buffer();
    bad_magic[0] = 'X';
    BufferSource source(bad_magic);
    EXPECT_EQ(ReadSnapshotHeader(source).code(), StatusCode::kDataLoss);
  }
  {
    std::string bad_version = sink.buffer();
    bad_version[sizeof(kSnapshotMagic)] =
        static_cast<char>(kFormatVersion + 1);
    BufferSource source(bad_version);
    EXPECT_EQ(ReadSnapshotHeader(source).code(), StatusCode::kDataLoss);
  }
}

TEST(FileIoTest, SinkThenSourceRoundTrip) {
  const std::string path = ::testing::TempDir() + "adaskip_binary_io_file";
  {
    Result<std::unique_ptr<FileSink>> sink = FileSink::Open(path);
    ASSERT_TRUE(sink.ok());
    ASSERT_TRUE(WriteSnapshotHeader(**sink).ok());
    ASSERT_TRUE(WriteBlock(**sink, FourCC("FILE"), "payload bytes").ok());
    ASSERT_TRUE((*sink)->Close().ok());
  }
  {
    Result<std::unique_ptr<FileSource>> source = FileSource::Open(path);
    ASSERT_TRUE(source.ok());
    ASSERT_TRUE(ReadSnapshotHeader(**source).ok());
    std::string payload;
    ASSERT_TRUE(ReadBlock(**source, FourCC("FILE"), &payload).ok());
    EXPECT_EQ(payload, "payload bytes");
    EXPECT_EQ((*source)->remaining(), 0);
  }
}

TEST(FileIoTest, MissingFileFailsToOpen) {
  EXPECT_FALSE(
      FileSource::Open(::testing::TempDir() + "adaskip_no_such_file").ok());
}

}  // namespace
}  // namespace persist
}  // namespace adaskip
