// Corruption injection against checkpoint directories: truncated files,
// bit-flipped payloads, wrong format-version bytes, stale checksums, and
// crash artifacts (missing manifest, torn journal-tail record). Every
// corruption must surface as a clean Status — kDataLoss for damaged
// snapshot bytes — never UB or a half-restored session. This suite runs
// under ASan/UBSan in CI's sanitize matrix.

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "adaskip/engine/session.h"
#include "adaskip/persist/binary_io.h"
#include "adaskip/workload/data_generator.h"

namespace adaskip {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Builds a session with one adaptively indexed column (journaling on),
/// runs a few queries, and checkpoints it into a directory unique to the
/// current test.
class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "adaskip_corrupt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    live_ = std::make_unique<Session>();
    ASSERT_TRUE(live_->CreateTable("t").ok());
    DataGenOptions gen;
    gen.order = DataOrder::kSorted;
    gen.num_rows = 20000;
    gen.value_range = 20000;
    ASSERT_TRUE(
        live_->AddColumn<int64_t>("t", "x", GenerateData<int64_t>(gen))
            .ok());
    IndexOptions options;
    options.kind = IndexKind::kAdaptive;
    options.adaptive.min_zone_size = 128;
    ASSERT_TRUE(live_->AttachIndex("t", "x", options).ok());
    ExecOptions exec;
    exec.journal_events = true;
    ASSERT_TRUE(live_->SetExecOptions("t", exec).ok());
    RunQueries(4, 0);
    ASSERT_TRUE(live_->Checkpoint(dir_).ok());
  }

  void RunQueries(int count, int64_t offset) {
    for (int i = 0; i < count; ++i) {
      const int64_t lo = offset + 1000 * i;
      ASSERT_TRUE(live_
                      ->ExecuteSpec(QuerySpec::Simple("t", Query::Count(Predicate::Between<int64_t>(
                                         "x", lo, lo + 150))))
                      .ok());
    }
  }

  StatusCode RestoreCode() {
    Session fresh;
    return fresh.Restore(dir_).code();
  }

  std::string dir_;
  std::unique_ptr<Session> live_;
};

TEST_F(CorruptionTest, PristineSnapshotRestores) {
  EXPECT_EQ(RestoreCode(), StatusCode::kOk);
}

TEST_F(CorruptionTest, TruncatedManifestIsDataLoss) {
  const std::string path = dir_ + "/MANIFEST.bin";
  const std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_EQ(RestoreCode(), StatusCode::kDataLoss);
}

TEST_F(CorruptionTest, BitFlippedColumnPayloadIsDataLoss) {
  const std::string path = dir_ + "/t.x.col";
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  WriteFileBytes(path, bytes);
  EXPECT_EQ(RestoreCode(), StatusCode::kDataLoss);
}

TEST_F(CorruptionTest, WrongFormatVersionByteIsDataLoss) {
  const std::string path = dir_ + "/MANIFEST.bin";
  std::string bytes = ReadFileBytes(path);
  // The format-version byte sits right after the 8-byte magic.
  ASSERT_GT(bytes.size(), sizeof(persist::kSnapshotMagic));
  bytes[sizeof(persist::kSnapshotMagic)] = 0x7F;
  WriteFileBytes(path, bytes);
  EXPECT_EQ(RestoreCode(), StatusCode::kDataLoss);
}

TEST_F(CorruptionTest, StaleChecksumOnIndexFileIsDataLoss) {
  const std::string path = dir_ + "/t.x.idx";
  std::string bytes = ReadFileBytes(path);
  // The block CRC is the last four bytes; flipping one leaves the payload
  // intact but the checksum stale.
  ASSERT_GT(bytes.size(), 4u);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  WriteFileBytes(path, bytes);
  EXPECT_EQ(RestoreCode(), StatusCode::kDataLoss);
}

TEST_F(CorruptionTest, MissingManifestMeansNoSnapshot) {
  // A crash mid-checkpoint leaves every file except MANIFEST.bin, which
  // is written last; such a directory must not restore.
  ASSERT_EQ(std::remove((dir_ + "/MANIFEST.bin").c_str()), 0);
  EXPECT_NE(RestoreCode(), StatusCode::kOk);
}

TEST_F(CorruptionTest, KindByteMismatchIsDataLoss) {
  // Re-frame the index file with a flipped kind byte but a VALID header
  // and CRC: the cross-check against the manifest options must catch what
  // the checksum cannot.
  const std::string path = dir_ + "/t.x.idx";
  std::string payload;
  {
    Result<std::unique_ptr<persist::FileSource>> source =
        persist::FileSource::Open(path);
    ASSERT_TRUE(source.ok());
    ASSERT_TRUE(persist::ReadSnapshotHeader(**source).ok());
    ASSERT_TRUE(
        persist::ReadBlock(**source, persist::FourCC("SIDX"), &payload)
            .ok());
  }
  ASSERT_FALSE(payload.empty());
  payload[0] = static_cast<char>(IndexKind::kZoneMap);
  {
    Result<std::unique_ptr<persist::FileSink>> sink =
        persist::FileSink::Open(path);
    ASSERT_TRUE(sink.ok());
    ASSERT_TRUE(persist::WriteSnapshotHeader(**sink).ok());
    ASSERT_TRUE(
        persist::WriteBlock(**sink, persist::FourCC("SIDX"), payload).ok());
    ASSERT_TRUE((*sink)->Close().ok());
  }
  EXPECT_EQ(RestoreCode(), StatusCode::kDataLoss);
}

TEST_F(CorruptionTest, TornTrailingTailRecordIsDropped) {
  // Post-checkpoint adaptation feeds the tail file; chopping bytes off
  // its end models a crash mid-append. Restore keeps every whole record
  // and drops the torn one — that is recovery working, not corruption.
  RunQueries(8, 250);
  const std::string path = dir_ + "/journal_tail.bin";
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), sizeof(persist::kSnapshotMagic) + 1);
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 3));
  Session fresh;
  EXPECT_TRUE(fresh.Restore(dir_).ok());
  Result<IndexSnapshot> snapshot = fresh.DescribeIndex("t", "x");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->num_rows, 20000);
}

TEST_F(CorruptionTest, BitFlippedTailRecordStopsReplayCleanly) {
  RunQueries(8, 250);
  const std::string path = dir_ + "/journal_tail.bin";
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 128u);
  // Damage a record in the middle: replay keeps everything before it and
  // drops the rest, still yielding a consistent (if older) state.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x08);
  WriteFileBytes(path, bytes);
  Session fresh;
  EXPECT_TRUE(fresh.Restore(dir_).ok());
  EXPECT_TRUE(fresh.DescribeIndex("t", "x").ok());
}

TEST_F(CorruptionTest, StrayTempFilesFromTornCheckpointAreIgnored) {
  // A crash during the stage phase of a later checkpoint leaves ".tmp"
  // files next to the committed snapshot. Restore never reads temp
  // names, so the previous snapshot stays fully restorable.
  WriteFileBytes(dir_ + "/MANIFEST.bin.tmp", "garbage from a torn stage");
  WriteFileBytes(dir_ + "/t.x.col.tmp", "half-written column payload");
  EXPECT_EQ(RestoreCode(), StatusCode::kOk);
}

TEST_F(CorruptionTest, FailedCheckpointKeepsTailDurability) {
  // Force a later checkpoint to fail mid-stage: a directory squatting on
  // a staged file name makes its FileSink::Open fail. The failed call
  // must leave the PREVIOUS tail sink installed, so events journaled
  // afterwards still reach dir_'s tail file and restore bit-identical.
  const std::string second = dir_ + "_second";
  ASSERT_TRUE(::mkdir(second.c_str(), 0755) == 0 || errno == EEXIST);
  ASSERT_TRUE(::mkdir((second + "/t.x.col.tmp").c_str(), 0755) == 0 ||
              errno == EEXIST);
  ASSERT_FALSE(live_->Checkpoint(second).ok());
  RunQueries(8, 250);

  Session fresh;
  ASSERT_TRUE(fresh.Restore(dir_).ok());
  EXPECT_EQ(fresh.journal().total_appended(),
            live_->journal().total_appended());
  Result<IndexSnapshot> a = live_->DescribeIndex("t", "x");
  Result<IndexSnapshot> b = fresh.DescribeIndex("t", "x");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->description, b->description);
}

TEST_F(CorruptionTest, OutOfRangeManifestOptionIsDataLoss) {
  // Zero out adaptive.min_zone_size inside the manifest payload and
  // re-frame it with a fresh (valid) CRC: a forged-but-checksummed
  // manifest must come back as kDataLoss, not trip the deferred-build
  // constructor's process-aborting CHECK.
  const std::string path = dir_ + "/MANIFEST.bin";
  std::string payload;
  {
    Result<std::unique_ptr<persist::FileSource>> source =
        persist::FileSource::Open(path);
    ASSERT_TRUE(source.ok());
    ASSERT_TRUE(persist::ReadSnapshotHeader(**source).ok());
    ASSERT_TRUE(
        persist::ReadBlock(**source, persist::FourCC("MNFT"), &payload)
            .ok());
  }
  // Manifest payload layout up to the field under attack: seq(8),
  // num_tables(8), "t"(8+1), num_columns(8), "x"(8+1), type(1),
  // has_index(1), then the options — kind(1) and ten i64 knobs before
  // adaptive.min_zone_size.
  const size_t offset = 8 + 8 + (8 + 1) + 8 + (8 + 1) + 1 + 1 + 1 + 10 * 8;
  ASSERT_GE(payload.size(), offset + 8);
  // Guard against layout drift: the bytes there must currently decode to
  // the 128 that SetUp configured.
  persist::BufferSource probe(
      std::string_view(payload).substr(offset, 8));
  int64_t min_zone_size = 0;
  ASSERT_TRUE(persist::ReadScalar(probe, &min_zone_size).ok());
  ASSERT_EQ(min_zone_size, 128);
  for (size_t i = 0; i < 8; ++i) payload[offset + i] = '\0';
  {
    Result<std::unique_ptr<persist::FileSink>> sink =
        persist::FileSink::Open(path);
    ASSERT_TRUE(sink.ok());
    ASSERT_TRUE(persist::WriteSnapshotHeader(**sink).ok());
    ASSERT_TRUE(
        persist::WriteBlock(**sink, persist::FourCC("MNFT"), payload).ok());
    ASSERT_TRUE((*sink)->Close().ok());
  }
  EXPECT_EQ(RestoreCode(), StatusCode::kDataLoss);
}

TEST_F(CorruptionTest, MissingColumnFileFailsCleanly) {
  ASSERT_EQ(std::remove((dir_ + "/t.x.col").c_str()), 0);
  EXPECT_NE(RestoreCode(), StatusCode::kOk);
}

TEST_F(CorruptionTest, FailedRestoreLeavesSnapshotReusable) {
  // A corrupt tail is repaired out-of-band (here: by deleting it); the
  // snapshot files themselves were never mutated by the failed attempts.
  const std::string path = dir_ + "/MANIFEST.bin";
  const std::string pristine = ReadFileBytes(path);
  WriteFileBytes(path, pristine.substr(0, pristine.size() - 2));
  EXPECT_EQ(RestoreCode(), StatusCode::kDataLoss);
  WriteFileBytes(path, pristine);
  EXPECT_EQ(RestoreCode(), StatusCode::kOk);
}

}  // namespace
}  // namespace adaskip
