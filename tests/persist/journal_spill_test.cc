// File-backed journal spill: evicted events land in a JSONL file, one
// JournalEvent::ToJson() object per line, surviving the bounded
// in-memory window. Covers the writer directly and the Session toggle
// that routes EventJournal evictions through it.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "adaskip/engine/session.h"
#include "adaskip/obs/event_journal.h"
#include "adaskip/obs/jsonl_spill.h"

namespace adaskip {
namespace {

std::string SpillPath(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "adaskip_spill_" + name + ".jsonl";
  std::remove(path.c_str());
  return path;
}

std::string ReadFileText(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

int64_t CountLines(const std::string& text) {
  int64_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

obs::JournalEvent SplitEvent(int64_t parent_begin) {
  obs::JournalEvent event;
  event.kind = obs::EventKind::kZoneSplit;
  event.scope = "t.x";
  event.args = {parent_begin, parent_begin + 1024, parent_begin + 512};
  return event;
}

TEST(JsonlSpillWriterTest, AppendsOneJsonObjectPerLine) {
  const std::string path = SpillPath("writer");
  {
    Result<std::unique_ptr<obs::JsonlSpillWriter>> writer =
        obs::JsonlSpillWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(SplitEvent(0));
    (*writer)->Append(SplitEvent(4096));
    EXPECT_TRUE((*writer)->status().ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  const std::string text = ReadFileText(path);
  EXPECT_EQ(CountLines(text), 2);
  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"zone_split\""), std::string::npos);
  // Reopening appends: an existing history is extended, never truncated.
  {
    Result<std::unique_ptr<obs::JsonlSpillWriter>> writer =
        obs::JsonlSpillWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(SplitEvent(8192));
    ASSERT_TRUE((*writer)->Close().ok());
  }
  EXPECT_EQ(CountLines(ReadFileText(path)), 3);
}

TEST(JsonlSpillWriterTest, UnwritablePathFailsToOpen) {
  EXPECT_FALSE(obs::JsonlSpillWriter::Open(
                   "/nonexistent-dir-adaskip/spill.jsonl")
                   .ok());
}

TEST(JournalSpillTest, SessionRoutesEvictionsToFile) {
  const std::string path = SpillPath("session");
  Session session;
  ASSERT_TRUE(session.EnableJournalSpill(path).ok());
  // The session journal keeps the (default) 4096 most recent events;
  // overflowing it by `extra` must spill exactly `extra` lines.
  const int64_t capacity = 4096;
  const int64_t extra = 37;
  for (int64_t i = 0; i < capacity + extra; ++i) {
    // Direct append: this test exercises the eviction path itself.
    // adaskip-lint: allow(journal-emission)
    session.journal().AppendEvent(SplitEvent(i));
  }
  EXPECT_EQ(session.journal().spilled(), extra);
  EXPECT_EQ(session.journal().size(), capacity);
  ASSERT_TRUE(session.DisableJournalSpill().ok());
  const std::string text = ReadFileText(path);
  EXPECT_EQ(CountLines(text), extra);
  // Oldest first: the first spilled event is the first ever appended.
  EXPECT_NE(text.find("\"seq\":1,"), std::string::npos);

  // After Disable, further evictions do not touch the file.
  // adaskip-lint: allow(journal-emission)
  session.journal().AppendEvent(SplitEvent(0));
  EXPECT_EQ(CountLines(ReadFileText(path)), extra);

  // Re-enabling the same path extends the history.
  ASSERT_TRUE(session.EnableJournalSpill(path).ok());
  // adaskip-lint: allow(journal-emission)
  session.journal().AppendEvent(SplitEvent(0));
  ASSERT_TRUE(session.DisableJournalSpill().ok());
  EXPECT_EQ(CountLines(ReadFileText(path)), extra + 1);
}

TEST(JournalSpillTest, DisableWithoutEnableIsNoop) {
  Session session;
  EXPECT_TRUE(session.DisableJournalSpill().ok());
}

}  // namespace
}  // namespace adaskip
