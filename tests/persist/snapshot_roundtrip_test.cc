// Checkpoint → Restore round-trip: the recovered session must be
// bit-identical to the live one — same Describe() text, same metadata
// footprint, same query results — for every skip-index kind, for packed
// segment layouts, and for mid-adaptation snapshots where part of the
// state only exists as journal-tail events replayed on top of the
// snapshot.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adaskip/engine/session.h"
#include "adaskip/workload/data_generator.h"

namespace adaskip {
namespace {

std::string SnapshotDir(const std::string& name) {
  return ::testing::TempDir() + "adaskip_snap_" + name;
}

IndexOptions OptionsFor(IndexKind kind) {
  IndexOptions options;
  options.kind = kind;
  options.zone_map.zone_size = 512;
  options.zone_tree.zone_size = 512;
  options.bloom.zone_size = 512;
  options.adaptive.min_zone_size = 128;
  return options;
}

void RunQueries(Session& session, int count, int64_t offset = 0) {
  for (int i = 0; i < count; ++i) {
    const int64_t lo = offset + 1000 * i;
    ASSERT_TRUE(session
                    .ExecuteSpec(QuerySpec::Simple("t", Query::Count(Predicate::Between<int64_t>(
                                      "x", lo, lo + 150))))
                    .ok());
  }
}

void ExpectIdenticalQueries(Session& live, Session& restored) {
  // Identical index state + identical data ⇒ every query answers the
  // same and scans the same rows; adaptation then advances in lockstep.
  for (int i = 0; i < 6; ++i) {
    const int64_t lo = 500 + 1500 * i;
    const Query query =
        Query::Count(Predicate::Between<int64_t>("x", lo, lo + 300));
    Result<QueryResult> a = live.ExecuteSpec(QuerySpec::Simple("t", query));
    Result<QueryResult> b = restored.ExecuteSpec(QuerySpec::Simple("t", query));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->count, b->count);
    EXPECT_EQ(a->stats.rows_scanned, b->stats.rows_scanned);
    EXPECT_EQ(a->stats.rows_total, b->stats.rows_total);
  }
}

void ExpectIdenticalSnapshots(Session& live, Session& restored) {
  Result<IndexSnapshot> a = live.DescribeIndex("t", "x");
  Result<IndexSnapshot> b = restored.DescribeIndex("t", "x");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kind, b->kind);
  EXPECT_EQ(a->description, b->description);
  EXPECT_EQ(a->num_rows, b->num_rows);
  EXPECT_EQ(a->zone_count, b->zone_count);
  EXPECT_EQ(a->memory_bytes, b->memory_bytes);
  EXPECT_EQ(a->unindexed_tail_rows, b->unindexed_tail_rows);
}

void RoundTripKind(IndexKind kind, const std::string& dir_name) {
  Session live;
  ASSERT_TRUE(live.CreateTable("t").ok());
  DataGenOptions gen;
  gen.order = DataOrder::kSorted;
  gen.num_rows = 20000;
  gen.value_range = 20000;
  ASSERT_TRUE(
      live.AddColumn<int64_t>("t", "x", GenerateData<int64_t>(gen)).ok());
  ASSERT_TRUE(live.AttachIndex("t", "x", OptionsFor(kind)).ok());
  RunQueries(live, 8);

  const std::string dir = SnapshotDir(dir_name);
  ASSERT_TRUE(live.Checkpoint(dir).ok());

  Session restored;
  ASSERT_TRUE(restored.Restore(dir).ok());
  ExpectIdenticalSnapshots(live, restored);
  ExpectIdenticalQueries(live, restored);
}

TEST(SnapshotRoundTripTest, FullScan) {
  RoundTripKind(IndexKind::kFullScan, "fullscan");
}

TEST(SnapshotRoundTripTest, ZoneMap) {
  RoundTripKind(IndexKind::kZoneMap, "zonemap");
}

TEST(SnapshotRoundTripTest, ZoneTree) {
  RoundTripKind(IndexKind::kZoneTree, "zonetree");
}

TEST(SnapshotRoundTripTest, Imprints) {
  RoundTripKind(IndexKind::kImprints, "imprints");
}

TEST(SnapshotRoundTripTest, BloomZoneMap) {
  RoundTripKind(IndexKind::kBloomZoneMap, "bloomzonemap");
}

TEST(SnapshotRoundTripTest, Adaptive) {
  RoundTripKind(IndexKind::kAdaptive, "adaptive");
}

TEST(SnapshotRoundTripTest, AdaptiveImprints) {
  RoundTripKind(IndexKind::kAdaptiveImprints, "adaptive_imprints");
}

TEST(SnapshotRoundTripTest, FloatingPointColumn) {
  Session live;
  ASSERT_TRUE(live.CreateTable("t").ok());
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) values.push_back(0.5 * i);
  ASSERT_TRUE(live.AddColumn<double>("t", "x", std::move(values)).ok());
  ASSERT_TRUE(
      live.AttachIndex("t", "x", OptionsFor(IndexKind::kZoneMap)).ok());
  ASSERT_TRUE(live.ExecuteSpec(QuerySpec::Simple("t", Query::Count(Predicate::Between<double>(
                                    "x", 100.5, 400.25))))
                  .ok());

  const std::string dir = SnapshotDir("double_column");
  ASSERT_TRUE(live.Checkpoint(dir).ok());
  Session restored;
  ASSERT_TRUE(restored.Restore(dir).ok());
  ExpectIdenticalSnapshots(live, restored);
  const Query query =
      Query::Sum(Predicate::Between<double>("x", 10.5, 99.75), "x");
  Result<QueryResult> a = live.ExecuteSpec(QuerySpec::Simple("t", query));
  Result<QueryResult> b = restored.ExecuteSpec(QuerySpec::Simple("t", query));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->count, b->count);
  EXPECT_EQ(a->sum, b->sum);
}

TEST(SnapshotRoundTripTest, MultipleTablesAndColumns) {
  Session live;
  ASSERT_TRUE(live.CreateTable("t").ok());
  DataGenOptions gen;
  gen.order = DataOrder::kSorted;
  gen.num_rows = 20000;
  gen.value_range = 20000;
  ASSERT_TRUE(
      live.AddColumn<int64_t>("t", "x", GenerateData<int64_t>(gen)).ok());
  ASSERT_TRUE(live.AddColumn<int32_t>("t", "unindexed",
                                      std::vector<int32_t>(20000, 7))
                  .ok());
  ASSERT_TRUE(live.CreateTable("u").ok());
  ASSERT_TRUE(
      live.AddColumn<int64_t>("u", "y", GenerateData<int64_t>(gen)).ok());
  ASSERT_TRUE(
      live.AttachIndex("t", "x", OptionsFor(IndexKind::kAdaptive)).ok());
  ASSERT_TRUE(
      live.AttachIndex("u", "y", OptionsFor(IndexKind::kZoneTree)).ok());
  RunQueries(live, 6);

  const std::string dir = SnapshotDir("multi");
  ASSERT_TRUE(live.Checkpoint(dir).ok());
  Session restored;
  ASSERT_TRUE(restored.Restore(dir).ok());
  ExpectIdenticalSnapshots(live, restored);
  Result<IndexSnapshot> u_live = live.DescribeIndex("u", "y");
  Result<IndexSnapshot> u_restored = restored.DescribeIndex("u", "y");
  ASSERT_TRUE(u_live.ok());
  ASSERT_TRUE(u_restored.ok());
  EXPECT_EQ(u_live->description, u_restored->description);
  // The unindexed column came back with its payload intact.
  Result<QueryResult> c = restored.ExecuteSpec(QuerySpec::Simple(
      "u", Query::Count(Predicate::Between<int64_t>("y", 0, 5000))));
  ASSERT_TRUE(c.ok());
  Result<QueryResult> c_live = live.ExecuteSpec(QuerySpec::Simple(
      "u", Query::Count(Predicate::Between<int64_t>("y", 0, 5000))));
  ASSERT_TRUE(c_live.ok());
  EXPECT_EQ(c->count, c_live->count);
}

TEST(SnapshotRoundTripTest, PackedSegmentsSurviveCheckpoint) {
  Session live;
  auto table = std::make_shared<Table>("t");
  // Narrow-range values in small sealed segments: exactly what the layout
  // cost model packs.
  std::vector<int64_t> values;
  values.reserve(8192);
  for (int i = 0; i < 8192; ++i) values.push_back(i % 200);
  ASSERT_TRUE(
      table->AddColumn("x", MakeColumn<int64_t>(std::move(values), 1024))
          .ok());
  ASSERT_TRUE(live.RegisterTable(table).ok());
  SegmentLayoutOptions layout;
  layout.enabled = true;
  layout.policy.min_rows = 512;
  ASSERT_TRUE(live.SetSegmentLayoutOptions("t", layout).ok());
  const int64_t live_bytes = table->MemoryUsageBytes();

  const std::string dir = SnapshotDir("packed");
  ASSERT_TRUE(live.Checkpoint(dir).ok());
  Session restored;
  ASSERT_TRUE(restored.Restore(dir).ok());
  Result<std::shared_ptr<Table>> restored_table = restored.GetTable("t");
  ASSERT_TRUE(restored_table.ok());
  // The physical layout round-tripped, not just the logical values: a
  // raw-only restore would occupy more bytes than the packed original.
  EXPECT_EQ((*restored_table)->MemoryUsageBytes(), live_bytes);
  const Query query =
      Query::Count(Predicate::Between<int64_t>("x", 10, 60));
  Result<QueryResult> a = live.ExecuteSpec(QuerySpec::Simple("t", query));
  Result<QueryResult> b = restored.ExecuteSpec(QuerySpec::Simple("t", query));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->count, b->count);
}

TEST(SnapshotRoundTripTest, JournalTailReplayReproducesMidAdaptationState) {
  Session live;
  ASSERT_TRUE(live.CreateTable("t").ok());
  DataGenOptions gen;
  gen.order = DataOrder::kSorted;
  gen.num_rows = 20000;
  gen.value_range = 20000;
  ASSERT_TRUE(
      live.AddColumn<int64_t>("t", "x", GenerateData<int64_t>(gen)).ok());
  ASSERT_TRUE(
      live.AttachIndex("t", "x", OptionsFor(IndexKind::kAdaptive)).ok());
  ExecOptions exec;
  exec.journal_events = true;
  ASSERT_TRUE(live.SetExecOptions("t", exec).ok());
  RunQueries(live, 6);

  const std::string dir = SnapshotDir("mid_adaptation");
  ASSERT_TRUE(live.Checkpoint(dir).ok());
  const int64_t snapshot_seq = live.journal().total_appended();

  // Keep adapting AFTER the checkpoint: these splits exist only as
  // journal-tail events on disk, not in the snapshot files.
  RunQueries(live, 10, 250);
  ASSERT_GT(live.journal().total_appended(), snapshot_seq);

  Session restored;
  ASSERT_TRUE(restored.Restore(dir).ok());
  // Restore replayed the tail: the recovered index matches the live
  // (post-checkpoint) state, not the checkpoint-time state, and the
  // journal resumes from the same sequence number.
  EXPECT_EQ(restored.journal().total_appended(),
            live.journal().total_appended());
  ExpectIdenticalSnapshots(live, restored);
  ExpectIdenticalQueries(live, restored);
}

TEST(SnapshotRoundTripTest, LayoutDecisionsAfterCheckpointReplayFromTail) {
  Session live;
  auto table = std::make_shared<Table>("t");
  std::vector<int64_t> values;
  values.reserve(8192);
  for (int i = 0; i < 8192; ++i) values.push_back(i % 200);
  ASSERT_TRUE(
      table->AddColumn("x", MakeColumn<int64_t>(std::move(values), 1024))
          .ok());
  ASSERT_TRUE(live.RegisterTable(table).ok());
  ExecOptions exec;
  exec.journal_events = true;
  ASSERT_TRUE(live.SetExecOptions("t", exec).ok());

  const std::string dir = SnapshotDir("layout_tail");
  ASSERT_TRUE(live.Checkpoint(dir).ok());

  // Layout decisions made after the checkpoint are journaled as
  // kSegmentLayout tail events; Restore re-packs from those events.
  SegmentLayoutOptions layout;
  layout.enabled = true;
  layout.policy.min_rows = 512;
  ASSERT_TRUE(live.SetSegmentLayoutOptions("t", layout).ok());

  Session restored;
  ASSERT_TRUE(restored.Restore(dir).ok());
  Result<std::shared_ptr<Table>> restored_table = restored.GetTable("t");
  ASSERT_TRUE(restored_table.ok());
  EXPECT_EQ((*restored_table)->MemoryUsageBytes(),
            table->MemoryUsageBytes());
  const Query query =
      Query::Count(Predicate::Between<int64_t>("x", 10, 60));
  Result<QueryResult> a = live.ExecuteSpec(QuerySpec::Simple("t", query));
  Result<QueryResult> b = restored.ExecuteSpec(QuerySpec::Simple("t", query));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->count, b->count);
}

TEST(SnapshotRoundTripTest, RecheckpointIntoSameDirectoryRestoresLatest) {
  // Checkpointing over an existing snapshot is the supported pattern;
  // the stage/commit protocol must atomically supersede the previous
  // generation, and the restored state must be the LATEST one.
  Session live;
  ASSERT_TRUE(live.CreateTable("t").ok());
  DataGenOptions gen;
  gen.order = DataOrder::kSorted;
  gen.num_rows = 20000;
  gen.value_range = 20000;
  ASSERT_TRUE(
      live.AddColumn<int64_t>("t", "x", GenerateData<int64_t>(gen)).ok());
  ASSERT_TRUE(
      live.AttachIndex("t", "x", OptionsFor(IndexKind::kAdaptive)).ok());
  ExecOptions exec;
  exec.journal_events = true;
  ASSERT_TRUE(live.SetExecOptions("t", exec).ok());
  RunQueries(live, 6);

  const std::string dir = SnapshotDir("recheckpoint");
  ASSERT_TRUE(live.Checkpoint(dir).ok());
  RunQueries(live, 10, 250);  // Adapt well past the first snapshot.
  ASSERT_TRUE(live.Checkpoint(dir).ok());

  Session restored;
  ASSERT_TRUE(restored.Restore(dir).ok());
  EXPECT_EQ(restored.journal().total_appended(),
            live.journal().total_appended());
  ExpectIdenticalSnapshots(live, restored);
  ExpectIdenticalQueries(live, restored);
}

TEST(SnapshotRoundTripTest, PostRestoreAdaptationIsDurableWithoutCheckpoint) {
  // Restore re-opens the journal tail, so adaptation that happens after
  // a restore survives a SECOND crash without an intervening Checkpoint:
  // restoring the same directory again reproduces it.
  Session live;
  ASSERT_TRUE(live.CreateTable("t").ok());
  DataGenOptions gen;
  gen.order = DataOrder::kSorted;
  gen.num_rows = 20000;
  gen.value_range = 20000;
  ASSERT_TRUE(
      live.AddColumn<int64_t>("t", "x", GenerateData<int64_t>(gen)).ok());
  ASSERT_TRUE(
      live.AttachIndex("t", "x", OptionsFor(IndexKind::kAdaptive)).ok());
  ExecOptions exec;
  exec.journal_events = true;
  ASSERT_TRUE(live.SetExecOptions("t", exec).ok());
  RunQueries(live, 6);
  const std::string dir = SnapshotDir("post_restore_tail");
  ASSERT_TRUE(live.Checkpoint(dir).ok());

  Session first;
  ASSERT_TRUE(first.Restore(dir).ok());
  ASSERT_TRUE(first.SetExecOptions("t", exec).ok());
  RunQueries(first, 10, 250);  // Exists only in `first` and dir's tail.

  Session second;
  ASSERT_TRUE(second.Restore(dir).ok());
  EXPECT_EQ(second.journal().total_appended(),
            first.journal().total_appended());
  ExpectIdenticalSnapshots(first, second);
  ExpectIdenticalQueries(first, second);
}

TEST(SnapshotRoundTripTest, RestoreRequiresEmptySession) {
  Session live;
  ASSERT_TRUE(live.CreateTable("t").ok());
  ASSERT_TRUE(live.AddColumn<int64_t>("t", "x", {1, 2, 3}).ok());
  const std::string dir = SnapshotDir("nonempty");
  ASSERT_TRUE(live.Checkpoint(dir).ok());
  EXPECT_EQ(live.Restore(dir).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace adaskip
