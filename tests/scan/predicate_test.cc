#include "adaskip/scan/predicate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace adaskip {
namespace {

TEST(PredicateTest, BetweenLowersToClosedInterval) {
  Predicate pred = Predicate::Between<int64_t>("x", 10, 20);
  ValueInterval<int64_t> interval = pred.ToInterval<int64_t>();
  EXPECT_EQ(interval.lo, 10);
  EXPECT_EQ(interval.hi, 20);
  EXPECT_TRUE(interval.Contains(10));
  EXPECT_TRUE(interval.Contains(20));
  EXPECT_FALSE(interval.Contains(9));
  EXPECT_FALSE(interval.Contains(21));
}

TEST(PredicateTest, EqualIsDegenerateInterval) {
  ValueInterval<int32_t> interval =
      Predicate::Equal<int32_t>("x", 7).ToInterval<int32_t>();
  EXPECT_EQ(interval.lo, 7);
  EXPECT_EQ(interval.hi, 7);
}

TEST(PredicateTest, LessOnIntegersUsesPredecessor) {
  ValueInterval<int64_t> interval =
      Predicate::Less<int64_t>("x", 10).ToInterval<int64_t>();
  EXPECT_EQ(interval.lo, std::numeric_limits<int64_t>::lowest());
  EXPECT_EQ(interval.hi, 9);
}

TEST(PredicateTest, LessEqualOnIntegers) {
  ValueInterval<int64_t> interval =
      Predicate::LessEqual<int64_t>("x", 10).ToInterval<int64_t>();
  EXPECT_EQ(interval.hi, 10);
}

TEST(PredicateTest, GreaterOnIntegersUsesSuccessor) {
  ValueInterval<int32_t> interval =
      Predicate::Greater<int32_t>("x", 10).ToInterval<int32_t>();
  EXPECT_EQ(interval.lo, 11);
  EXPECT_EQ(interval.hi, std::numeric_limits<int32_t>::max());
}

TEST(PredicateTest, GreaterEqualOnIntegers) {
  ValueInterval<int32_t> interval =
      Predicate::GreaterEqual<int32_t>("x", 10).ToInterval<int32_t>();
  EXPECT_EQ(interval.lo, 10);
}

TEST(PredicateTest, LessOnDoublesUsesNextafter) {
  ValueInterval<double> interval =
      Predicate::Less<double>("x", 1.0).ToInterval<double>();
  EXPECT_LT(interval.hi, 1.0);
  EXPECT_EQ(std::nextafter(interval.hi,
                           std::numeric_limits<double>::infinity()),
            1.0);
}

TEST(PredicateTest, GreaterOnFloatsUsesNextafter) {
  ValueInterval<float> interval =
      Predicate::Greater<float>("x", 2.0f).ToInterval<float>();
  EXPECT_GT(interval.lo, 2.0f);
  EXPECT_EQ(std::nextafter(interval.lo,
                           -std::numeric_limits<float>::infinity()),
            2.0f);
}

TEST(PredicateTest, PredecessorSuccessorSaturateAtLimits) {
  EXPECT_EQ(internal::PredecessorValue(std::numeric_limits<int64_t>::lowest()),
            std::numeric_limits<int64_t>::lowest());
  EXPECT_EQ(internal::SuccessorValue(std::numeric_limits<int64_t>::max()),
            std::numeric_limits<int64_t>::max());
}

TEST(PredicateTest, LessThanIntMinYieldsEmptyInterval) {
  // x < INT64_MIN matches nothing; predecessor saturates so the interval
  // collapses to [lowest, lowest], which still over-approximates only by
  // the single lowest value. Verify Between can express truly empty.
  ValueInterval<int64_t> empty =
      Predicate::Between<int64_t>("x", 5, 4).ToInterval<int64_t>();
  EXPECT_TRUE(empty.empty());
}

TEST(PredicateTest, ToStringFormats) {
  EXPECT_EQ(Predicate::Between<int64_t>("price", 1, 9).ToString(),
            "price BETWEEN 1 AND 9");
  EXPECT_EQ(Predicate::Equal<int32_t>("id", 5).ToString(), "id = 5");
  EXPECT_EQ(Predicate::Less<int64_t>("x", 3).ToString(), "x < 3");
  EXPECT_EQ(Predicate::GreaterEqual<int64_t>("x", 3).ToString(), "x >= 3");
}

TEST(PredicateTest, CompareOpNames) {
  EXPECT_EQ(CompareOpToString(CompareOp::kBetween), "BETWEEN");
  EXPECT_EQ(CompareOpToString(CompareOp::kEqual), "=");
  EXPECT_EQ(CompareOpToString(CompareOp::kLess), "<");
  EXPECT_EQ(CompareOpToString(CompareOp::kLessEqual), "<=");
  EXPECT_EQ(CompareOpToString(CompareOp::kGreater), ">");
  EXPECT_EQ(CompareOpToString(CompareOp::kGreaterEqual), ">=");
}

TEST(ScalarTest, MatchesTypeExactly) {
  EXPECT_TRUE(ScalarMatchesType(Scalar(int32_t{1}), DataType::kInt32));
  EXPECT_TRUE(ScalarMatchesType(Scalar(int64_t{1}), DataType::kInt64));
  EXPECT_TRUE(ScalarMatchesType(Scalar(1.0f), DataType::kFloat32));
  EXPECT_TRUE(ScalarMatchesType(Scalar(1.0), DataType::kFloat64));
  EXPECT_FALSE(ScalarMatchesType(Scalar(int32_t{1}), DataType::kInt64));
  EXPECT_FALSE(ScalarMatchesType(Scalar(1.0), DataType::kFloat32));
}

TEST(ScalarTest, ScalarAsConverts) {
  EXPECT_EQ(Predicate::ScalarAs<double>(Scalar(int64_t{3})), 3.0);
  EXPECT_EQ(Predicate::ScalarAs<int64_t>(Scalar(int64_t{1} << 40)),
            int64_t{1} << 40);
}

TEST(ValueIntervalTest, EmptyDetection) {
  ValueInterval<int64_t> empty{5, 4};
  EXPECT_TRUE(empty.empty());
  ValueInterval<int64_t> point{5, 5};
  EXPECT_FALSE(point.empty());
}

}  // namespace
}  // namespace adaskip
