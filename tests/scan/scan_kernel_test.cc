#include "adaskip/scan/scan_kernel.h"

#include <gtest/gtest.h>

#include "adaskip/util/rng.h"

namespace adaskip {
namespace {

template <typename T>
std::vector<T> RandomValues(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<T> values;
  values.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    values.push_back(static_cast<T>(rng.NextInt64(1000)) -
                     static_cast<T>(500));
  }
  return values;
}

template <typename T>
class ScanKernelTypedTest : public ::testing::Test {};

using ColumnTypes = ::testing::Types<int32_t, int64_t, float, double>;
TYPED_TEST_SUITE(ScanKernelTypedTest, ColumnTypes);

TYPED_TEST(ScanKernelTypedTest, CountMatchesReference) {
  using T = TypeParam;
  std::vector<T> values = RandomValues<T>(2000, 1);
  std::span<const T> span(values);
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    T lo = static_cast<T>(rng.NextInt64InRange(-600, 600));
    T hi = static_cast<T>(rng.NextInt64InRange(-600, 600));
    if (hi < lo) std::swap(lo, hi);
    int64_t a = rng.NextInt64(2001);
    int64_t b = rng.NextInt64(2001);
    if (a > b) std::swap(a, b);
    RowRange range{a, b};
    ValueInterval<T> interval{lo, hi};
    EXPECT_EQ(CountMatches(span, range, interval),
              reference::CountMatches(span, range, interval));
  }
}

TYPED_TEST(ScanKernelTypedTest, SumMatchesReference) {
  using T = TypeParam;
  std::vector<T> values = RandomValues<T>(2000, 3);
  std::span<const T> span(values);
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    T lo = static_cast<T>(rng.NextInt64InRange(-600, 0));
    T hi = static_cast<T>(rng.NextInt64InRange(0, 600));
    RowRange range{0, 2000};
    ValueInterval<T> interval{lo, hi};
    EXPECT_DOUBLE_EQ(SumMatches(span, range, interval),
                     reference::SumMatches(span, range, interval));
  }
}

TYPED_TEST(ScanKernelTypedTest, SumCountedAgreesWithSeparateKernels) {
  using T = TypeParam;
  std::vector<T> values = RandomValues<T>(1500, 5);
  std::span<const T> span(values);
  ValueInterval<T> interval{static_cast<T>(-100), static_cast<T>(100)};
  RowRange range{100, 1400};
  SumCount<T> sc = SumMatchesCounted(span, range, interval);
  EXPECT_EQ(sc.count, CountMatches(span, range, interval));
  EXPECT_DOUBLE_EQ(sc.sum, SumMatches(span, range, interval));
}

TYPED_TEST(ScanKernelTypedTest, MaterializeMatchesReference) {
  using T = TypeParam;
  std::vector<T> values = RandomValues<T>(1000, 6);
  std::span<const T> span(values);
  ValueInterval<T> interval{static_cast<T>(0), static_cast<T>(250)};
  RowRange range{10, 990};
  SelectionVector actual;
  int64_t appended = MaterializeMatches(span, range, interval, &actual);
  SelectionVector expected =
      reference::MaterializeMatches(span, range, interval);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(appended, expected.size());
}

TYPED_TEST(ScanKernelTypedTest, BitmapMatchesAgreesWithMaterialize) {
  using T = TypeParam;
  std::vector<T> values = RandomValues<T>(700, 7);
  std::span<const T> span(values);
  ValueInterval<T> interval{static_cast<T>(-50), static_cast<T>(50)};
  RowRange range{0, 700};
  BitVector bitmap(700);
  int64_t count = BitmapMatches(span, range, interval, &bitmap);
  SelectionVector rows = reference::MaterializeMatches(span, range, interval);
  EXPECT_EQ(count, rows.size());
  EXPECT_EQ(bitmap.CountOnes(), rows.size());
  for (int64_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE(bitmap.Get(rows[i]));
  }
}

TYPED_TEST(ScanKernelTypedTest, MinMaxMatchesFindsExtremes) {
  using T = TypeParam;
  std::vector<T> values = RandomValues<T>(500, 8);
  std::span<const T> span(values);
  ValueInterval<T> interval{static_cast<T>(-200), static_cast<T>(200)};
  RowRange range{0, 500};
  bool found = false;
  MinMax<T> mm = MinMaxMatches(span, range, interval, &found);
  MinMaxCount<T> mmc = MinMaxMatchesCounted(span, range, interval);
  ASSERT_TRUE(found);
  EXPECT_EQ(mm.min, mmc.min);
  EXPECT_EQ(mm.max, mmc.max);
  // Cross-check against brute force.
  T expected_min = std::numeric_limits<T>::max();
  T expected_max = std::numeric_limits<T>::lowest();
  int64_t expected_count = 0;
  for (T v : values) {
    if (interval.Contains(v)) {
      expected_min = std::min(expected_min, v);
      expected_max = std::max(expected_max, v);
      ++expected_count;
    }
  }
  EXPECT_EQ(mm.min, expected_min);
  EXPECT_EQ(mm.max, expected_max);
  EXPECT_EQ(mmc.count, expected_count);
}

TYPED_TEST(ScanKernelTypedTest, MinMaxMatchesEmptyResult) {
  using T = TypeParam;
  std::vector<T> values = {static_cast<T>(1), static_cast<T>(2)};
  bool found = true;
  MinMaxMatches(std::span<const T>(values), {0, 2},
                ValueInterval<T>{static_cast<T>(10), static_cast<T>(20)},
                &found);
  EXPECT_FALSE(found);
}

TYPED_TEST(ScanKernelTypedTest, ComputeMinMaxExact) {
  using T = TypeParam;
  std::vector<T> values = RandomValues<T>(300, 9);
  std::span<const T> span(values);
  MinMax<T> mm = ComputeMinMax(span, 50, 250);
  T expected_min = values[50];
  T expected_max = values[50];
  for (int64_t i = 50; i < 250; ++i) {
    expected_min = std::min(expected_min, values[static_cast<size_t>(i)]);
    expected_max = std::max(expected_max, values[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(mm.min, expected_min);
  EXPECT_EQ(mm.max, expected_max);
}

TYPED_TEST(ScanKernelTypedTest, FindMatchBoundsLocatesRun) {
  using T = TypeParam;
  // Values: 0..99; matches at positions with value in [40, 60].
  std::vector<T> values;
  for (int i = 0; i < 100; ++i) values.push_back(static_cast<T>(i));
  std::span<const T> span(values);
  ValueInterval<T> interval{static_cast<T>(40), static_cast<T>(60)};
  RowRange bounds = FindMatchBounds(span, {0, 100}, interval);
  EXPECT_EQ(bounds.begin, 40);
  EXPECT_EQ(bounds.end, 61);
}

TYPED_TEST(ScanKernelTypedTest, FindMatchBoundsNoMatch) {
  using T = TypeParam;
  std::vector<T> values = {static_cast<T>(1), static_cast<T>(2)};
  RowRange bounds =
      FindMatchBounds(std::span<const T>(values), {0, 2},
                      ValueInterval<T>{static_cast<T>(5), static_cast<T>(9)});
  EXPECT_EQ(bounds.begin, -1);
  EXPECT_EQ(bounds.end, -1);
}

TYPED_TEST(ScanKernelTypedTest, FindMatchBoundsSingleMatch) {
  using T = TypeParam;
  std::vector<T> values = {static_cast<T>(1), static_cast<T>(5),
                           static_cast<T>(2)};
  RowRange bounds =
      FindMatchBounds(std::span<const T>(values), {0, 3},
                      ValueInterval<T>{static_cast<T>(5), static_cast<T>(5)});
  EXPECT_EQ(bounds.begin, 1);
  EXPECT_EQ(bounds.end, 2);
}

TYPED_TEST(ScanKernelTypedTest, BoundarySplitScanSegments) {
  using T = TypeParam;
  std::vector<T> values = RandomValues<T>(512, 21);
  std::span<const T> span(values);
  ValueInterval<T> interval{static_cast<T>(-100), static_cast<T>(100)};
  RowRange range{32, 480};
  BoundaryScan<T> scan = BoundarySplitScan(span, range, interval);
  RowRange expected_bounds = FindMatchBounds(span, range, interval);
  ASSERT_EQ(scan.match_bounds, expected_bounds);
  ASSERT_GE(expected_bounds.begin, 0);
  if (expected_bounds.begin > range.begin) {
    EXPECT_EQ(scan.prefix,
              ComputeMinMax(span, range.begin, expected_bounds.begin));
  }
  EXPECT_EQ(scan.run,
            ComputeMinMax(span, expected_bounds.begin, expected_bounds.end));
  if (expected_bounds.end < range.end) {
    EXPECT_EQ(scan.suffix,
              ComputeMinMax(span, expected_bounds.end, range.end));
  }
}

TYPED_TEST(ScanKernelTypedTest, BoundarySplitScanNoMatch) {
  using T = TypeParam;
  std::vector<T> values = {static_cast<T>(1), static_cast<T>(9),
                           static_cast<T>(4)};
  BoundaryScan<T> scan = BoundarySplitScan(
      std::span<const T>(values), {0, 3},
      ValueInterval<T>{static_cast<T>(50), static_cast<T>(60)});
  EXPECT_EQ(scan.match_bounds, (RowRange{-1, -1}));
  // Prefix covers the whole range when nothing matches.
  EXPECT_EQ(scan.prefix, (MinMax<T>{static_cast<T>(1), static_cast<T>(9)}));
}

TYPED_TEST(ScanKernelTypedTest, BoundarySplitScanAllMatch) {
  using T = TypeParam;
  std::vector<T> values = {static_cast<T>(5), static_cast<T>(6),
                           static_cast<T>(7)};
  BoundaryScan<T> scan = BoundarySplitScan(
      std::span<const T>(values), {0, 3},
      ValueInterval<T>{static_cast<T>(0), static_cast<T>(100)});
  EXPECT_EQ(scan.match_bounds, (RowRange{0, 3}));
  EXPECT_EQ(scan.run, (MinMax<T>{static_cast<T>(5), static_cast<T>(7)}));
}

TEST(ScanKernelTest, EmptyRangeYieldsNothing) {
  std::vector<int64_t> values = {1, 2, 3};
  std::span<const int64_t> span(values);
  ValueInterval<int64_t> interval{0, 10};
  EXPECT_EQ(CountMatches(span, {1, 1}, interval), 0);
  EXPECT_EQ(SumMatches(span, {2, 2}, interval), 0.0);
  SelectionVector sel;
  EXPECT_EQ(MaterializeMatches(span, {0, 0}, interval, &sel), 0);
  EXPECT_TRUE(sel.empty());
}

TEST(ScanKernelTest, EmptyIntervalMatchesNothing) {
  std::vector<int64_t> values = {1, 2, 3, 4};
  std::span<const int64_t> span(values);
  ValueInterval<int64_t> interval{10, 5};  // lo > hi.
  EXPECT_EQ(CountMatches(span, {0, 4}, interval), 0);
}

TEST(ScanKernelTest, BoundaryInclusivity) {
  std::vector<int64_t> values = {9, 10, 11, 19, 20, 21};
  std::span<const int64_t> span(values);
  EXPECT_EQ(CountMatches(span, {0, 6}, ValueInterval<int64_t>{10, 20}), 4);
}

// Selectivity sweep: count kernel must agree with the reference at every
// selectivity, including 0% and 100%.
class KernelSelectivityTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelSelectivityTest, CountAcrossSelectivities) {
  const int percent = GetParam();
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 10000; ++i) values.push_back(i % 100);
  std::span<const int64_t> span(values);
  ValueInterval<int64_t> interval{0, percent - 1};
  int64_t count = CountMatches(span, {0, 10000}, interval);
  EXPECT_EQ(count, percent * 100);
}

INSTANTIATE_TEST_SUITE_P(Selectivities, KernelSelectivityTest,
                         ::testing::Values(0, 1, 5, 25, 50, 75, 99, 100));

}  // namespace
}  // namespace adaskip
