// Property tests pinning the SIMD dispatch bit-identity contract
// (scan/simd/kernel_dispatch.h): for random values, ranges, and
// predicate intervals — including empty ranges, full-range intervals,
// point (lo == hi) intervals, and NaN-bearing float columns — the
// dispatch-scalar table, the AVX2 table (when the host has one), and the
// packed-segment kernels all agree bit for bit, and agree with the
// reference kernels wherever the contract says "exact".

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "adaskip/scan/scan_kernel.h"
#include "adaskip/scan/simd/kernel_dispatch.h"
#include "adaskip/scan/packed_kernels.h"

namespace adaskip {
namespace {

// Bitwise equality: the contract is "bit for bit", so -0.0 != +0.0 and
// NaN payloads must match too (NaN never matches a predicate, but
// ComputeMinMax can propagate one).
template <typename T>
bool BitEq(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    return a == b;
  } else if constexpr (sizeof(T) == 4) {
    return std::bit_cast<uint32_t>(a) == std::bit_cast<uint32_t>(b);
  } else {
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
  }
}

bool BitEqD(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

template <typename T>
std::vector<T> RandomValues(std::mt19937_64* rng, int64_t n, bool narrow,
                            bool with_nan) {
  std::vector<T> values(static_cast<size_t>(n));
  if constexpr (std::is_integral_v<T>) {
    const int64_t magnitude = narrow ? 500 : (int64_t{1} << 30);
    std::uniform_int_distribution<int64_t> dist(-magnitude, magnitude);
    for (T& v : values) v = static_cast<T>(dist(*rng));
  } else {
    std::uniform_real_distribution<double> dist(narrow ? -1.0 : -1e6,
                                                narrow ? 1.0 : 1e6);
    std::uniform_int_distribution<int> special(0, 31);
    for (T& v : values) {
      const int s = special(*rng);
      if (with_nan && s == 0) {
        v = std::numeric_limits<T>::quiet_NaN();
      } else if (s == 1) {
        v = static_cast<T>(-0.0);
      } else if (s == 2) {
        v = static_cast<T>(0.0);
      } else {
        v = static_cast<T>(dist(*rng));
      }
    }
  }
  return values;
}

template <typename T>
ValueInterval<T> RandomInterval(std::mt19937_64* rng,
                                const std::vector<T>& values) {
  std::uniform_int_distribution<int> kind(0, 4);
  switch (kind(*rng)) {
    case 0:  // Full range: everything (except NaN) matches.
      return {std::numeric_limits<T>::lowest(),
              std::numeric_limits<T>::max()};
    case 1: {  // Point interval on an existing value when possible.
      if (!values.empty()) {
        std::uniform_int_distribution<size_t> at(0, values.size() - 1);
        const T v = values[at(*rng)];
        if (!(v != v)) return {v, v};  // Skip NaN pivots.
      }
      return {T{0}, T{0}};
    }
    case 2:  // Empty value interval (lo > hi): nothing matches.
      return {T{1}, T{0}};
    default: {  // Random band around two sampled values.
      if (values.empty()) return {T{0}, T{1}};
      std::uniform_int_distribution<size_t> at(0, values.size() - 1);
      T a = values[at(*rng)];
      T b = values[at(*rng)];
      if (a != a) a = T{0};  // NaN bounds never match anything;
      if (b != b) b = T{1};  // keep bounds ordered and comparable.
      if (b < a) std::swap(a, b);
      return {a, b};
    }
  }
}

// Runs every kernel of `ops` against every kernel of `want` over one
// (values, range, interval) sample and asserts bitwise agreement.
template <typename T>
void CheckTablesAgree(const simd::KernelOps<T>& want,
                      const simd::KernelOps<T>& got, std::span<const T> values,
                      RowRange range, ValueInterval<T> interval) {
  const int64_t n = static_cast<int64_t>(values.size());
  SCOPED_TRACE(testing::Message()
               << "n=" << n << " range=[" << range.begin << "," << range.end
               << ") interval=[" << interval.lo << "," << interval.hi << "]");

  ASSERT_EQ(want.count_matches(values, range, interval),
            got.count_matches(values, range, interval));

  const SumCount<T> sw = want.sum_matches_counted(values, range, interval);
  const SumCount<T> sg = got.sum_matches_counted(values, range, interval);
  ASSERT_EQ(sw.count, sg.count);
  ASSERT_TRUE(BitEqD(sw.sum, sg.sum))
      << "sum " << sw.sum << " vs " << sg.sum;

  const MinMaxCount<T> mw =
      want.min_max_matches_counted(values, range, interval);
  const MinMaxCount<T> mg = got.min_max_matches_counted(values, range,
                                                        interval);
  ASSERT_EQ(mw.count, mg.count);
  ASSERT_TRUE(BitEq(mw.min, mg.min)) << mw.min << " vs " << mg.min;
  ASSERT_TRUE(BitEq(mw.max, mg.max)) << mw.max << " vs " << mg.max;

  SelectionVector rows_want, rows_got;
  ASSERT_EQ(want.materialize_matches(values, range, interval, &rows_want, 7),
            got.materialize_matches(values, range, interval, &rows_got, 7));
  ASSERT_EQ(rows_want.size(), rows_got.size());
  for (int64_t i = 0; i < rows_want.size(); ++i) {
    ASSERT_EQ(rows_want[i], rows_got[i]) << "at " << i;
  }

  BitVector bits_want(n), bits_got(n);
  ASSERT_EQ(want.bitmap_matches(values, range, interval, &bits_want),
            got.bitmap_matches(values, range, interval, &bits_got));
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(bits_want.Get(i), bits_got.Get(i)) << "bit " << i;
  }

  if (range.begin < range.end) {
    const MinMax<T> cw = want.compute_min_max(values, range.begin, range.end);
    const MinMax<T> cg = got.compute_min_max(values, range.begin, range.end);
    ASSERT_TRUE(BitEq(cw.min, cg.min)) << cw.min << " vs " << cg.min;
    ASSERT_TRUE(BitEq(cw.max, cg.max)) << cw.max << " vs " << cg.max;
  }

  // The exact kernels also agree with the naive reference loop.
  ASSERT_EQ(got.count_matches(values, range, interval),
            reference::CountMatches(values, range, interval));
  SelectionVector rows_ref = reference::MaterializeMatches(values, range,
                                                           interval);
  ASSERT_EQ(rows_got.size(), rows_ref.size());
  for (int64_t i = 0; i < rows_ref.size(); ++i) {
    ASSERT_EQ(rows_got[i], rows_ref[i] + 7);
  }
}

template <typename T>
void SweepType(uint64_t seed, bool with_nan) {
  const simd::KernelOps<T>& scalar = simd::ScalarOps<T>();
  const simd::KernelOps<T>* avx2 = simd::Avx2OpsOrNull<T>();
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> size_dist(0, 2500);
  for (int iter = 0; iter < 120; ++iter) {
    const int64_t n = iter == 0 ? 0 : size_dist(rng);
    const std::vector<T> values =
        RandomValues<T>(&rng, n, /*narrow=*/(iter % 3) == 0, with_nan);
    std::uniform_int_distribution<int64_t> pos(0, n);
    int64_t begin = pos(rng);
    int64_t end = pos(rng);
    if (end < begin) std::swap(begin, end);
    if (iter % 5 == 0) begin = end;  // Empty row ranges too.
    if (iter % 7 == 0) {
      begin = 0;
      end = n;
    }
    const RowRange range{begin, end};
    const ValueInterval<T> interval = RandomInterval<T>(&rng, values);
    // Scalar vs itself pins determinism; scalar vs AVX2 pins the
    // bit-identity contract on hosts that have AVX2.
    CheckTablesAgree<T>(scalar, scalar, values, range, interval);
    if (avx2 != nullptr) {
      CheckTablesAgree<T>(scalar, *avx2, values, range, interval);
    }
  }
}

TEST(SimdKernelPropertyTest, Int32ScalarAvx2Agree) {
  SweepType<int32_t>(0x5eed0001, /*with_nan=*/false);
}

TEST(SimdKernelPropertyTest, Int64ScalarAvx2Agree) {
  SweepType<int64_t>(0x5eed0002, /*with_nan=*/false);
}

TEST(SimdKernelPropertyTest, FloatScalarAvx2Agree) {
  SweepType<float>(0x5eed0003, /*with_nan=*/false);
}

TEST(SimdKernelPropertyTest, DoubleScalarAvx2Agree) {
  SweepType<double>(0x5eed0004, /*with_nan=*/false);
}

TEST(SimdKernelPropertyTest, FloatWithNaNsScalarAvx2Agree) {
  SweepType<float>(0x5eed0005, /*with_nan=*/true);
}

TEST(SimdKernelPropertyTest, DoubleWithNaNsScalarAvx2Agree) {
  SweepType<double>(0x5eed0006, /*with_nan=*/true);
}

// The dispatched table (whatever the process resolved to) must be one of
// the two tables the tests above compare.
TEST(SimdKernelPropertyTest, ActivePathIsCoherent) {
  const simd::KernelPath path = simd::ActiveKernelPath();
  if (path == simd::KernelPath::kAvx2) {
    EXPECT_NE(simd::Avx2OpsOrNull<int32_t>(), nullptr);
    EXPECT_TRUE(simd::UsingAvx2());
    EXPECT_EQ(simd::ActiveKernelPathName(), "avx2");
  } else {
    EXPECT_FALSE(simd::UsingAvx2());
  }
}

// Packed-segment kernels vs the dispatched raw kernels: bit-identical
// over the same rows for every width {1, 2, 4, 8, 16}.
template <typename T>
void SweepPacked(uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (const int target_bits : {1, 2, 4, 8, 16}) {
    for (int iter = 0; iter < 30; ++iter) {
      std::uniform_int_distribution<int64_t> size_dist(1, 1500);
      const int64_t n = size_dist(rng);
      std::uniform_int_distribution<int64_t> base_dist(-1000000, 1000000);
      const int64_t base = base_dist(rng);
      const uint64_t code_max = (uint64_t{1} << target_bits) - 1;
      std::uniform_int_distribution<uint64_t> code_dist(0, code_max);
      std::vector<T> values(static_cast<size_t>(n));
      for (T& v : values) {
        v = static_cast<T>(base + static_cast<int64_t>(code_dist(rng)));
      }
      const SegmentPackPlan<T> plan = PlanSegmentPack<T>(values);
      ASSERT_TRUE(plan.value_range_ok);
      ASSERT_LE(plan.bits, target_bits);
      const PackedSegment<T> packed =
          PackSegment<T>(values, plan.base, plan.bits);
      // Every value survives the round trip.
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(packed.ValueAt(i), values[static_cast<size_t>(i)]);
      }
      std::uniform_int_distribution<int64_t> pos(0, n);
      int64_t begin = pos(rng);
      int64_t end = pos(rng);
      if (end < begin) std::swap(begin, end);
      const RowRange range{begin, end};
      const ValueInterval<T> interval = RandomInterval<T>(&rng, values);
      SCOPED_TRACE(testing::Message()
                   << "bits=" << plan.bits << " base=" << base << " n=" << n
                   << " range=[" << begin << "," << end << ") interval=["
                   << interval.lo << "," << interval.hi << "]");

      ASSERT_EQ(PackedCountMatches(packed, range, interval),
                simd::CountMatches<T>(values, range, interval));

      const SumCount<T> sp = PackedSumMatchesCounted(packed, range, interval);
      const SumCount<T> sr = simd::SumMatchesCounted<T>(values, range,
                                                        interval);
      ASSERT_EQ(sp.count, sr.count);
      ASSERT_TRUE(BitEqD(sp.sum, sr.sum)) << sp.sum << " vs " << sr.sum;

      const MinMaxCount<T> mp =
          PackedMinMaxMatchesCounted(packed, range, interval);
      const MinMaxCount<T> mr =
          simd::MinMaxMatchesCounted<T>(values, range, interval);
      ASSERT_EQ(mp.count, mr.count);
      ASSERT_EQ(mp.min, mr.min);
      ASSERT_EQ(mp.max, mr.max);

      SelectionVector rows_packed, rows_raw;
      ASSERT_EQ(PackedMaterializeMatches(packed, range, interval,
                                         &rows_packed, /*base_row=*/0),
                simd::MaterializeMatches<T>(values, range, interval,
                                            &rows_raw, /*base=*/0));
      ASSERT_EQ(rows_packed.size(), rows_raw.size());
      for (int64_t i = 0; i < rows_packed.size(); ++i) {
        ASSERT_EQ(rows_packed[i], rows_raw[i]);
      }
    }
  }
}

TEST(SimdKernelPropertyTest, PackedInt32AgreesWithRaw) {
  SweepPacked<int32_t>(0x9acc0001);
}

TEST(SimdKernelPropertyTest, PackedInt64AgreesWithRaw) {
  SweepPacked<int64_t>(0x9acc0002);
}

TEST(SimdKernelPropertyTest, PackedBitsForRangeRoundsUpToWidths) {
  EXPECT_EQ(PackedBitsForRange(0), 1);
  EXPECT_EQ(PackedBitsForRange(1), 1);
  EXPECT_EQ(PackedBitsForRange(2), 2);
  EXPECT_EQ(PackedBitsForRange(3), 2);
  EXPECT_EQ(PackedBitsForRange(4), 4);
  EXPECT_EQ(PackedBitsForRange(15), 4);
  EXPECT_EQ(PackedBitsForRange(16), 8);
  EXPECT_EQ(PackedBitsForRange(255), 8);
  EXPECT_EQ(PackedBitsForRange(256), 16);
  EXPECT_EQ(PackedBitsForRange(65535), 16);
  EXPECT_EQ(PackedBitsForRange(65536), 0);  // Too wide to pack.
  EXPECT_EQ(BitsRequiredForRange(0), 1);
  EXPECT_EQ(BitsRequiredForRange(1), 1);
  EXPECT_EQ(BitsRequiredForRange(2), 2);
  EXPECT_EQ(BitsRequiredForRange(65535), 16);
  EXPECT_EQ(BitsRequiredForRange(65536), 17);
}

}  // namespace
}  // namespace adaskip
