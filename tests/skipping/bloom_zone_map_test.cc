#include "adaskip/skipping/bloom_zone_map.h"

#include <gtest/gtest.h>

#include "adaskip/skipping/zone_map.h"
#include "adaskip/util/interval_set.h"
#include "adaskip/util/rng.h"
#include "adaskip/workload/data_generator.h"
#include "tests/testing/skip_test_util.h"

namespace adaskip {
namespace {

TEST(BloomZoneMapTest, NameAndZones) {
  TypedColumn<int64_t> column(GenerateData<int64_t>(
      {.order = DataOrder::kUniform, .num_rows = 5000, .seed = 3}));
  BloomZoneMapT<int64_t> map(column, BloomZoneMapOptions{.zone_size = 500});
  EXPECT_EQ(map.name(), "bloomzonemap");
  EXPECT_EQ(map.ZoneCount(), 10);
  EXPECT_GT(map.MemoryUsageBytes(), 0);
}

TEST(BloomZoneMapTest, BloomNeverFalseNegative) {
  DataGenOptions gen;
  gen.order = DataOrder::kUniform;
  gen.num_rows = 8192;
  gen.value_range = 1 << 24;
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  BloomZoneMapT<int64_t> map(column, BloomZoneMapOptions{.zone_size = 1024});
  // Every stored value must pass the Bloom test of its own zone.
  for (int64_t row = 0; row < column.size(); row += 7) {
    int64_t zone = row / 1024;
    EXPECT_TRUE(map.BloomMayContain(zone, column.Get(row))) << row;
  }
}

TEST(BloomZoneMapTest, PointProbeSkipsZonesWithoutTheValue) {
  // Clustered ids with gaps: each zone holds a distinct band, min/max of
  // zones overlap the probe value's neighborhood but most zones do not
  // contain the exact value.
  std::vector<int64_t> values;
  Rng rng(9);
  for (int64_t zone = 0; zone < 16; ++zone) {
    for (int64_t i = 0; i < 1024; ++i) {
      // Sparse ids: multiples of 16 with a zone-specific offset.
      values.push_back(rng.NextInt64(1 << 20) * 16 + zone);
    }
  }
  TypedColumn<int64_t> column(std::move(values));
  BloomZoneMapT<int64_t> map(column, BloomZoneMapOptions{.zone_size = 1024});

  // Probe a value that exists only in zone 3 (offset pattern).
  int64_t probe = column.Get(3 * 1024 + 11);
  Predicate pred = Predicate::Equal<int64_t>("x", probe);
  std::vector<RowRange> candidates =
      testing_util::ProbeAndCheckSuperset<int64_t>(&map, pred, column.data());
  // Without Blooms, min/max overlap would admit all 16 zones; the Bloom
  // filters must prune most of them.
  EXPECT_LT(testing_util::CandidateRows(candidates), column.size() / 2);
}

TEST(BloomZoneMapTest, RangeProbeBehavesLikeZoneMap) {
  DataGenOptions gen;
  gen.order = DataOrder::kClustered;
  gen.num_rows = 40000;
  gen.value_range = 100000;
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  BloomZoneMapT<int64_t> bloom(column, BloomZoneMapOptions{.zone_size = 512});
  ZoneMapT<int64_t> plain(column, ZoneMapOptions{.zone_size = 512});

  Rng rng(13);
  for (int trial = 0; trial < 15; ++trial) {
    int64_t lo = rng.NextInt64(100000);
    int64_t hi = lo + rng.NextInt64(5000);
    Predicate pred = Predicate::Between<int64_t>("x", lo, hi);
    std::vector<RowRange> bloom_candidates;
    ProbeStats bloom_stats;
    bloom.Probe(pred, &bloom_candidates, &bloom_stats);
    std::vector<RowRange> plain_candidates;
    ProbeStats plain_stats;
    plain.Probe(pred, &plain_candidates, &plain_stats);
    EXPECT_EQ(bloom_candidates, plain_candidates);
  }
}

struct BloomCase {
  DataOrder order;
  int64_t zone_size;
  int64_t bits_per_row;
};

class BloomPropertyTest : public ::testing::TestWithParam<BloomCase> {};

TEST_P(BloomPropertyTest, SupersetForRangesAndPoints) {
  const BloomCase& param = GetParam();
  DataGenOptions gen;
  gen.order = param.order;
  gen.num_rows = 15000;
  gen.value_range = 30000;
  gen.seed = 31;
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  BloomZoneMapT<int64_t> map(
      column, BloomZoneMapOptions{.zone_size = param.zone_size,
                                  .bits_per_row = param.bits_per_row});
  Rng rng(37);
  for (int trial = 0; trial < 10; ++trial) {
    int64_t lo = rng.NextInt64(30000);
    Predicate range_pred =
        Predicate::Between<int64_t>("x", lo, lo + rng.NextInt64(2000));
    testing_util::ProbeAndCheckSuperset<int64_t>(&map, range_pred,
                                                 column.data());
    int64_t existing = column.Get(rng.NextInt64(column.size()));
    Predicate point_pred = Predicate::Equal<int64_t>("x", existing);
    testing_util::ProbeAndCheckSuperset<int64_t>(&map, point_pred,
                                                 column.data());
    // Absent values must also be a (possibly empty) superset — trivially
    // true, but exercises the probe path.
    Predicate absent_pred = Predicate::Equal<int64_t>("x", 30000 + trial);
    testing_util::ProbeAndCheckSuperset<int64_t>(&map, absent_pred,
                                                 column.data());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BloomPropertyTest,
    ::testing::Values(BloomCase{DataOrder::kUniform, 1024, 8},
                      BloomCase{DataOrder::kSorted, 512, 4},
                      BloomCase{DataOrder::kClustered, 2048, 8},
                      BloomCase{DataOrder::kZipf, 1024, 2},
                      BloomCase{DataOrder::kUniform, 128, 16}));

TEST(BloomZoneMapTest, FactoryDispatches) {
  std::unique_ptr<Column> column = MakeColumn<int32_t>({5, 6, 7});
  std::unique_ptr<SkipIndex> index = MakeBloomZoneMap(*column, {});
  EXPECT_EQ(index->name(), "bloomzonemap");
}

}  // namespace
}  // namespace adaskip
