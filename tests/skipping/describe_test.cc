#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "adaskip/adaptive/index_manager.h"
#include "adaskip/storage/column.h"
#include "adaskip/storage/table.h"

namespace adaskip {
namespace {

std::shared_ptr<Table> MakeTable(int64_t rows) {
  std::vector<int64_t> values(static_cast<size_t>(rows));
  std::iota(values.begin(), values.end(), 0);
  auto table = std::make_shared<Table>("t");
  EXPECT_TRUE(table->AddColumn("v", MakeColumn(std::move(values))).ok());
  return table;
}

IndexOptions OptionsFor(IndexKind kind) {
  IndexOptions options;
  options.kind = kind;
  return options;
}

class DescribeTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(DescribeTest, SummaryNamesStructureAndGeometry) {
  auto table = MakeTable(10000);
  std::unique_ptr<SkipIndex> index =
      MakeSkipIndex(table->column(0), OptionsFor(GetParam()));

  const std::string summary = index->Describe();
  // The summary leads with the structure's name and reports its row
  // coverage — the minimum a debugging surface needs.
  EXPECT_EQ(summary.rfind(std::string(index->name()) + ":", 0), 0)
      << summary;
  EXPECT_NE(summary.find(std::to_string(index->num_rows())), std::string::npos)
      << summary;
}

TEST_P(DescribeTest, SummaryTracksAppends) {
  auto table = MakeTable(10000);
  std::unique_ptr<SkipIndex> index =
      MakeSkipIndex(table->column(0), OptionsFor(GetParam()));

  AppendBatch batch;
  std::vector<int64_t> tail(5000);
  std::iota(tail.begin(), tail.end(), 10000);
  batch.Add("v", std::move(tail));
  ASSERT_TRUE(table->Append(batch).ok());
  index->OnAppend({10000, 15000});

  const std::string summary = index->Describe();
  EXPECT_NE(summary.find(std::to_string(index->num_rows())), std::string::npos)
      << summary;
  EXPECT_EQ(index->num_rows(), 15000);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DescribeTest,
    ::testing::Values(IndexKind::kFullScan, IndexKind::kZoneMap,
                      IndexKind::kZoneTree, IndexKind::kImprints,
                      IndexKind::kBloomZoneMap, IndexKind::kAdaptive,
                      IndexKind::kAdaptiveImprints),
    [](const ::testing::TestParamInfo<IndexKind>& param_info) {
      return std::string(IndexKindToString(param_info.param));
    });

}  // namespace
}  // namespace adaskip
