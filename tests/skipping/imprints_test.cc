#include "adaskip/skipping/column_imprints.h"

#include <gtest/gtest.h>

#include "adaskip/util/rng.h"
#include "adaskip/workload/data_generator.h"
#include "tests/testing/skip_test_util.h"

namespace adaskip {
namespace {

TEST(ImprintsTest, NameAndBlockCount) {
  TypedColumn<int64_t> column(GenerateData<int64_t>(
      {.order = DataOrder::kUniform, .num_rows = 1000, .seed = 2}));
  ColumnImprintsT<int64_t> imprints(column,
                                    ImprintsOptions{.block_size = 64});
  EXPECT_EQ(imprints.name(), "imprints");
  EXPECT_EQ(imprints.ZoneCount(), (1000 + 63) / 64);
  EXPECT_GT(imprints.MemoryUsageBytes(), 0);
}

TEST(ImprintsTest, BinOfIsMonotone) {
  DataGenOptions gen;
  gen.order = DataOrder::kUniform;
  gen.num_rows = 10000;
  gen.value_range = 1000000;
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  ColumnImprintsT<int64_t> imprints(column, {});
  int64_t prev_bin = 0;
  for (int64_t v = 0; v < 1000000; v += 9973) {
    int64_t bin = imprints.BinOf(v);
    EXPECT_GE(bin, prev_bin);
    EXPECT_LT(bin, imprints.num_bins());
    prev_bin = bin;
  }
}

TEST(ImprintsTest, EquiDepthBinsSpreadUniformData) {
  DataGenOptions gen;
  gen.order = DataOrder::kUniform;
  gen.num_rows = 100000;
  gen.value_range = 1 << 30;
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  ColumnImprintsT<int64_t> imprints(column, {});
  // With 64 equi-depth bins over uniform data, min and max values must be
  // in (near-)opposite bins.
  EXPECT_EQ(imprints.BinOf(0), 0);
  EXPECT_GE(imprints.BinOf((1 << 30) - 1), imprints.num_bins() - 2);
}

TEST(ImprintsTest, SortedDataNarrowQuerySkipsMostBlocks) {
  DataGenOptions gen;
  gen.order = DataOrder::kSorted;
  gen.num_rows = 1 << 16;
  gen.value_range = 1 << 20;
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  ColumnImprintsT<int64_t> imprints(column, {});
  Predicate pred = Predicate::Between<int64_t>("x", 1000, 3000);
  std::vector<RowRange> candidates;
  ProbeStats stats;
  imprints.Probe(pred, &candidates, &stats);
  EXPECT_GT(stats.zones_skipped, stats.zones_candidate * 10);
}

TEST(ImprintsTest, EmptyColumnProbeIsEmpty) {
  TypedColumn<int64_t> column(std::vector<int64_t>{});
  ColumnImprintsT<int64_t> imprints(column, {});
  std::vector<RowRange> candidates;
  ProbeStats stats;
  imprints.Probe(Predicate::Between<int64_t>("x", 0, 1), &candidates,
                 &stats);
  EXPECT_TRUE(candidates.empty());
}

TEST(ImprintsTest, FactoryDispatches) {
  std::unique_ptr<Column> column = MakeColumn<double>({0.5, 1.5, 2.5});
  std::unique_ptr<SkipIndex> index = MakeColumnImprints(*column, {});
  EXPECT_EQ(index->name(), "imprints");
  EXPECT_EQ(index->num_rows(), 3);
}

struct ImprintsCase {
  DataOrder order;
  int64_t block_size;
  int64_t num_bins;
};

class ImprintsPropertyTest : public ::testing::TestWithParam<ImprintsCase> {};

TEST_P(ImprintsPropertyTest, ProbeNeverMissesQualifyingRows) {
  const ImprintsCase& param = GetParam();
  DataGenOptions gen;
  gen.order = param.order;
  gen.num_rows = 20000;
  gen.value_range = 50000;
  gen.seed = 77;
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  ColumnImprintsT<int64_t> imprints(
      column, ImprintsOptions{.block_size = param.block_size,
                              .num_bins = param.num_bins});
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = rng.NextInt64(50000);
    int64_t hi = lo + rng.NextInt64(3000);
    Predicate pred = Predicate::Between<int64_t>("x", lo, hi);
    testing_util::ProbeAndCheckSuperset<int64_t>(&imprints, pred,
                                                 column.data());
  }
  // Point predicates too.
  for (int trial = 0; trial < 10; ++trial) {
    int64_t v = column.Get(rng.NextInt64(column.size()));
    Predicate pred = Predicate::Equal<int64_t>("x", v);
    testing_util::ProbeAndCheckSuperset<int64_t>(&imprints, pred,
                                                 column.data());
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndShapes, ImprintsPropertyTest,
    ::testing::Values(ImprintsCase{DataOrder::kSorted, 64, 64},
                      ImprintsCase{DataOrder::kUniform, 64, 64},
                      ImprintsCase{DataOrder::kClustered, 64, 64},
                      ImprintsCase{DataOrder::kZipf, 64, 64},
                      ImprintsCase{DataOrder::kUniform, 256, 16},
                      ImprintsCase{DataOrder::kKSorted, 128, 32},
                      ImprintsCase{DataOrder::kRandomWalk, 64, 8}));

}  // namespace
}  // namespace adaskip
