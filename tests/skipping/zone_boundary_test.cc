// Zone/segment boundary edge cases of incremental skip-index extension:
// partial trailing zones, appends landing exactly on zone or segment
// boundaries, single-row segments, and candidate-range adjacency across
// the extended tail.

#include <gtest/gtest.h>

#include <numeric>

#include "adaskip/skipping/zone_layout.h"
#include "adaskip/skipping/zone_map.h"
#include "adaskip/storage/column.h"

namespace adaskip {
namespace {

std::vector<int64_t> Iota(int64_t n, int64_t start = 0) {
  std::vector<int64_t> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), start);
  return v;
}

TEST(ZoneBoundaryTest, AppendWidensLastPartialZoneWithExactBounds) {
  TypedColumn<int64_t> column(Iota(10), /*segment_rows=*/64);
  std::vector<Zone<int64_t>> zones = BuildUniformZones(column, /*zone_size=*/8);
  ASSERT_EQ(zones.size(), 2u);  // [0,8) and the partial [8,10).

  RowRange appended = column.Append(std::span<const int64_t>(Iota(4, 10)));
  int64_t first_touched = AppendUniformZones(column, appended, 8, &zones);
  EXPECT_EQ(first_touched, 1);  // The partial zone was extended in place.
  ASSERT_EQ(zones.size(), 2u);  // [0,8) and [8,14); no new zone yet.
  EXPECT_EQ(zones[1].begin, 8);
  EXPECT_EQ(zones[1].end, 14);
  EXPECT_EQ(zones[1].min, 8);   // Exact bounds, not conservative.
  EXPECT_EQ(zones[1].max, 13);
  EXPECT_TRUE(ZonesTileRowSpace(zones, column.size()));
  EXPECT_TRUE(ZoneBoundsAreCorrect(zones, column));
}

TEST(ZoneBoundaryTest, AppendExactlyOnZoneBoundaryOpensFreshZone) {
  TypedColumn<int64_t> column(Iota(16), /*segment_rows=*/64);
  std::vector<Zone<int64_t>> zones = BuildUniformZones(column, /*zone_size=*/8);
  ASSERT_EQ(zones.size(), 2u);
  ASSERT_EQ(zones[1].end, 16);  // Last zone is exactly full.

  RowRange appended = column.Append(std::span<const int64_t>(Iota(3, 16)));
  int64_t first_touched = AppendUniformZones(column, appended, 8, &zones);
  EXPECT_EQ(first_touched, 2);  // Nothing extended; a new zone appeared.
  ASSERT_EQ(zones.size(), 3u);
  EXPECT_EQ(zones[2].begin, 16);
  EXPECT_EQ(zones[2].end, 19);
  EXPECT_TRUE(ZonesTileRowSpace(zones, column.size()));
  EXPECT_TRUE(ZoneBoundsAreCorrect(zones, column));
}

TEST(ZoneBoundaryTest, AppendExactlyOnSegmentBoundary) {
  // Segment holds exactly two zones; fill it completely, then append. The next
  // zone must start in the new segment, never straddling the boundary.
  TypedColumn<int64_t> column(Iota(16), /*segment_rows=*/16);
  std::vector<Zone<int64_t>> zones = BuildUniformZones(column, /*zone_size=*/8);
  ASSERT_EQ(zones.size(), 2u);

  RowRange appended = column.Append(std::span<const int64_t>(Iota(12, 16)));
  AppendUniformZones(column, appended, 8, &zones);
  ASSERT_EQ(zones.size(), 4u);
  EXPECT_EQ(zones[2].begin, 16);
  EXPECT_EQ(zones[2].end, 24);
  EXPECT_EQ(zones[3].begin, 24);
  EXPECT_EQ(zones[3].end, 28);
  for (const Zone<int64_t>& z : zones) {
    EXPECT_EQ(column.SegmentOf(z.begin), column.SegmentOf(z.end - 1))
        << "zone [" << z.begin << ", " << z.end << ") crosses a segment";
  }
  EXPECT_TRUE(ZoneBoundsAreCorrect(zones, column));
}

TEST(ZoneBoundaryTest, ZoneClippedAtSegmentBoundaryStaysShort) {
  // zone_size 8 does not divide the 12-row fill of a 16-row segment:
  // extension across the boundary must clip at row 16, leaving a short
  // zone [8,16) before the new segment's zones begin.
  TypedColumn<int64_t> column(Iota(12), /*segment_rows=*/16);
  std::vector<Zone<int64_t>> zones =
      BuildUniformZones(column, /*zone_size=*/8);
  ASSERT_EQ(zones.size(), 2u);  // [0,8) [8,12).

  RowRange appended = column.Append(std::span<const int64_t>(Iota(12, 12)));
  AppendUniformZones(column, appended, 8, &zones);
  EXPECT_TRUE(ZonesTileRowSpace(zones, column.size()));
  EXPECT_TRUE(ZoneBoundsAreCorrect(zones, column));
  // [8,12) grew only to the segment boundary: [8,16).
  EXPECT_EQ(zones[1].begin, 8);
  EXPECT_EQ(zones[1].end, 16);
  EXPECT_EQ(zones[2].begin, 16);
}

TEST(ZoneBoundaryTest, SingleRowSegmentsProduceSingleRowZones) {
  TypedColumn<int64_t> column(/*segment_rows=*/1);
  column.Append(std::span<const int64_t>(Iota(3)));
  std::vector<Zone<int64_t>> zones =
      BuildUniformZones(column, /*zone_size=*/8);
  ASSERT_EQ(zones.size(), 3u);  // Zones clip at every segment boundary.
  RowRange appended = column.Append(std::span<const int64_t>(Iota(2, 3)));
  AppendUniformZones(column, appended, 8, &zones);
  ASSERT_EQ(zones.size(), 5u);
  EXPECT_TRUE(ZonesTileRowSpace(zones, 5));
  EXPECT_TRUE(ZoneBoundsAreCorrect(zones, column));
  for (const Zone<int64_t>& z : zones) EXPECT_EQ(z.size(), 1);
}

TEST(ZoneBoundaryTest, ProbeCoalescesCandidatesAcrossExtendedTail) {
  // After a tail extension the probe must still emit one coalesced
  // candidate range across the old-tail/new-zone seam when both zones
  // qualify (IntervalSet-style adjacency, not two abutting ranges).
  TypedColumn<int64_t> column(Iota(10), /*segment_rows=*/64);
  ZoneMapOptions options;
  options.zone_size = 8;
  ZoneMapT<int64_t> map(column, options);
  RowRange appended = column.Append(std::span<const int64_t>(Iota(20, 10)));
  map.OnAppend(appended);
  EXPECT_EQ(map.num_rows(), 30);

  std::vector<RowRange> candidates;
  ProbeStats stats;
  // Every value qualifies → every zone qualifies → one coalesced range.
  map.Probe(Predicate::Between<int64_t>("x", 0, 1000), &candidates, &stats);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], (RowRange{0, 30}));

  // A window covering only the appended tail touches no pre-append zone.
  candidates.clear();
  stats = ProbeStats();
  map.Probe(Predicate::Between<int64_t>("x", 16, 29), &candidates, &stats);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].begin, 16);
  EXPECT_EQ(candidates[0].end, 30);
  EXPECT_GT(stats.zones_skipped, 0);
}

TEST(ZoneBoundaryTest, RepeatedSmallAppendsKeepTiling) {
  // Many one-row appends across zone and segment boundaries: the tiling
  // and bounds invariants must hold after every step.
  TypedColumn<int64_t> column(/*segment_rows=*/8);
  std::vector<Zone<int64_t>> zones;
  for (int64_t i = 0; i < 40; ++i) {
    RowRange appended = column.Append(std::span<const int64_t>(&i, 1));
    AppendUniformZones(column, appended, /*zone_size=*/4, &zones);
    ASSERT_TRUE(ZonesTileRowSpace(zones, column.size())) << "row " << i;
    ASSERT_TRUE(ZoneBoundsAreCorrect(zones, column)) << "row " << i;
  }
  // 40 rows, zone size 4 dividing segment size 8 → exactly 10 full zones.
  EXPECT_EQ(zones.size(), 10u);
}

}  // namespace
}  // namespace adaskip
