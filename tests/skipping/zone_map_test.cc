#include "adaskip/skipping/zone_map.h"

#include <gtest/gtest.h>

#include "adaskip/util/rng.h"
#include "adaskip/workload/data_generator.h"
#include "tests/testing/skip_test_util.h"

namespace adaskip {
namespace {

TEST(ZoneLayoutTest, BuildUniformZonesTilesRowSpace) {
  std::vector<int64_t> values(1000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i);
  }
  std::vector<Zone<int64_t>> zones =
      BuildUniformZones(std::span<const int64_t>(values), 128);
  EXPECT_EQ(zones.size(), 8u);  // ceil(1000/128)
  EXPECT_TRUE(ZonesTileRowSpace(zones, 1000));
  EXPECT_TRUE(ZoneBoundsAreCorrect(zones, std::span<const int64_t>(values)));
  // Last zone is short.
  EXPECT_EQ(zones.back().end - zones.back().begin, 1000 - 7 * 128);
}

TEST(ZoneLayoutTest, SortedDataHasDisjointZoneBounds) {
  std::vector<int64_t> values(512);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i * 3);
  }
  auto zones = BuildUniformZones(std::span<const int64_t>(values), 64);
  for (size_t z = 1; z < zones.size(); ++z) {
    EXPECT_GT(zones[z].min, zones[z - 1].max);
  }
}

TEST(ZoneLayoutTest, EmptyColumnYieldsNoZones) {
  std::vector<int64_t> values;
  auto zones = BuildUniformZones(std::span<const int64_t>(values), 64);
  EXPECT_TRUE(zones.empty());
  EXPECT_TRUE(ZonesTileRowSpace(zones, 0));
}

TEST(ZoneLayoutTest, TileDetectsGapOverlapAndMisorder) {
  using Z = Zone<int64_t>;
  EXPECT_TRUE(ZonesTileRowSpace<int64_t>({Z{0, 5, 0, 0}, Z{5, 9, 0, 0}}, 9));
  EXPECT_FALSE(ZonesTileRowSpace<int64_t>({Z{0, 5, 0, 0}, Z{6, 9, 0, 0}}, 9));
  EXPECT_FALSE(ZonesTileRowSpace<int64_t>({Z{0, 5, 0, 0}, Z{4, 9, 0, 0}}, 9));
  EXPECT_FALSE(ZonesTileRowSpace<int64_t>({Z{0, 9, 0, 0}}, 10));
  EXPECT_FALSE(ZonesTileRowSpace<int64_t>({Z{0, 0, 0, 0}}, 0));
}

TEST(ZoneMapTest, NameAndCounts) {
  TypedColumn<int64_t> column(GenerateData<int64_t>(
      {.order = DataOrder::kUniform, .num_rows = 10000, .seed = 1}));
  ZoneMapT<int64_t> map(column, ZoneMapOptions{.zone_size = 1000});
  EXPECT_EQ(map.name(), "zonemap");
  EXPECT_EQ(map.num_rows(), 10000);
  EXPECT_EQ(map.ZoneCount(), 10);
  EXPECT_GT(map.MemoryUsageBytes(), 0);
}

TEST(ZoneMapTest, SortedDataSkipsAlmostEverything) {
  DataGenOptions gen;
  gen.order = DataOrder::kSorted;
  gen.num_rows = 100000;
  gen.value_range = 1000000;
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  ZoneMapT<int64_t> map(column, ZoneMapOptions{.zone_size = 1000});

  Predicate pred = Predicate::Between<int64_t>("x", 500000, 510000);
  std::vector<RowRange> candidates =
      testing_util::ProbeAndCheckSuperset<int64_t>(&map, pred, column.data());
  // ~1% selectivity over sorted data: only a couple of zones qualify.
  EXPECT_LE(testing_util::CandidateRows(candidates), 5000);
}

TEST(ZoneMapTest, UniformDataSkipsNothingForWideRanges) {
  DataGenOptions gen;
  gen.order = DataOrder::kUniform;
  gen.num_rows = 50000;
  gen.value_range = 1000000;
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  ZoneMapT<int64_t> map(column, ZoneMapOptions{.zone_size = 1000});

  // Mid-domain 1%-wide value range: on shuffled data every zone straddles
  // it, so nothing is skipped — the paper's motivating pathology.
  Predicate pred = Predicate::Between<int64_t>("x", 500000, 510000);
  std::vector<RowRange> candidates;
  ProbeStats stats;
  map.Probe(pred, &candidates, &stats);
  EXPECT_EQ(stats.zones_skipped, 0);
  EXPECT_EQ(testing_util::CandidateRows(candidates), 50000);
  EXPECT_EQ(stats.entries_read, 50);
}

TEST(ZoneMapTest, CandidatesAreCoalesced) {
  std::vector<int64_t> values(4000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i);
  }
  TypedColumn<int64_t> column(std::move(values));
  ZoneMapT<int64_t> map(column, ZoneMapOptions{.zone_size = 100});
  Predicate pred = Predicate::Between<int64_t>("x", 1000, 2999);
  std::vector<RowRange> candidates;
  ProbeStats stats;
  map.Probe(pred, &candidates, &stats);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], (RowRange{1000, 3000}));
  EXPECT_EQ(stats.zones_candidate, 20);
  EXPECT_EQ(stats.zones_skipped, 20);
}

TEST(ZoneMapTest, EmptyColumn) {
  TypedColumn<int64_t> column(std::vector<int64_t>{});
  ZoneMapT<int64_t> map(column, ZoneMapOptions{});
  std::vector<RowRange> candidates;
  ProbeStats stats;
  map.Probe(Predicate::Between<int64_t>("x", 0, 1), &candidates, &stats);
  EXPECT_TRUE(candidates.empty());
}

TEST(ZoneMapTest, FactoryDispatchesAllTypes) {
  for (DataType type : {DataType::kInt32, DataType::kInt64,
                        DataType::kFloat32, DataType::kFloat64}) {
    std::unique_ptr<Column> column;
    switch (type) {
      case DataType::kInt32:
        column = MakeColumn<int32_t>({1, 2, 3});
        break;
      case DataType::kInt64:
        column = MakeColumn<int64_t>({1, 2, 3});
        break;
      case DataType::kFloat32:
        column = MakeColumn<float>({1, 2, 3});
        break;
      case DataType::kFloat64:
        column = MakeColumn<double>({1, 2, 3});
        break;
    }
    std::unique_ptr<SkipIndex> index = MakeZoneMap(*column, {});
    EXPECT_EQ(index->name(), "zonemap");
    EXPECT_EQ(index->num_rows(), 3);
  }
}

TEST(FullScanIndexTest, AlwaysReturnsFullRange) {
  FullScanIndex index(100);
  std::vector<RowRange> candidates;
  ProbeStats stats;
  index.Probe(Predicate::Between<int64_t>("x", 5, 6), &candidates, &stats);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], (RowRange{0, 100}));
  EXPECT_EQ(index.MemoryUsageBytes(), 0);
  EXPECT_EQ(index.ZoneCount(), 1);
  EXPECT_EQ(index.TakeAdaptationNanos(), 0);
}

TEST(FullScanIndexTest, EmptyColumnReturnsNoCandidates) {
  FullScanIndex index(0);
  std::vector<RowRange> candidates;
  ProbeStats stats;
  index.Probe(Predicate::Between<int64_t>("x", 5, 6), &candidates, &stats);
  EXPECT_TRUE(candidates.empty());
}

// Superset property across data orders, zone sizes, and random queries.
struct ZoneMapPropertyCase {
  DataOrder order;
  int64_t zone_size;
};

class ZoneMapPropertyTest
    : public ::testing::TestWithParam<ZoneMapPropertyCase> {};

TEST_P(ZoneMapPropertyTest, ProbeNeverMissesQualifyingRows) {
  const ZoneMapPropertyCase& param = GetParam();
  DataGenOptions gen;
  gen.order = param.order;
  gen.num_rows = 20000;
  gen.value_range = 100000;
  gen.seed = 99;
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  ZoneMapT<int64_t> map(column,
                        ZoneMapOptions{.zone_size = param.zone_size});
  ASSERT_TRUE(ZonesTileRowSpace(map.zones(), column.size()));
  ASSERT_TRUE(ZoneBoundsAreCorrect(map.zones(), column.data()));

  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = rng.NextInt64(100000);
    int64_t hi = lo + rng.NextInt64(5000);
    Predicate pred = Predicate::Between<int64_t>("x", lo, hi);
    testing_util::ProbeAndCheckSuperset<int64_t>(&map, pred, column.data());
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndZoneSizes, ZoneMapPropertyTest,
    ::testing::Values(
        ZoneMapPropertyCase{DataOrder::kSorted, 512},
        ZoneMapPropertyCase{DataOrder::kSorted, 4096},
        ZoneMapPropertyCase{DataOrder::kReverseSorted, 1024},
        ZoneMapPropertyCase{DataOrder::kKSorted, 512},
        ZoneMapPropertyCase{DataOrder::kClustered, 512},
        ZoneMapPropertyCase{DataOrder::kRandomWalk, 2048},
        ZoneMapPropertyCase{DataOrder::kSawtooth, 1024},
        ZoneMapPropertyCase{DataOrder::kZipf, 512},
        ZoneMapPropertyCase{DataOrder::kUniform, 512},
        ZoneMapPropertyCase{DataOrder::kUniform, 16384}));

}  // namespace
}  // namespace adaskip
