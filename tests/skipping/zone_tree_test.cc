#include "adaskip/skipping/zone_tree.h"

#include <gtest/gtest.h>

#include "adaskip/skipping/zone_map.h"
#include "adaskip/util/interval_set.h"
#include "adaskip/util/rng.h"
#include "adaskip/workload/data_generator.h"
#include "tests/testing/skip_test_util.h"

namespace adaskip {
namespace {

TEST(ZoneTreeTest, SmallColumnHasLeavesOnly) {
  TypedColumn<int64_t> column(std::vector<int64_t>{1, 2, 3, 4, 5});
  ZoneTreeT<int64_t> tree(column, ZoneTreeOptions{.zone_size = 2, .fanout = 8});
  EXPECT_EQ(tree.ZoneCount(), 3);
  EXPECT_EQ(tree.LevelCount(), 1);  // 3 leaves fit under one root group.
}

TEST(ZoneTreeTest, BuildsLevelsForManyZones) {
  DataGenOptions gen;
  gen.order = DataOrder::kUniform;
  gen.num_rows = 64 * 64 * 4;  // 1024 zones of 16 rows at fanout 8.
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  ZoneTreeT<int64_t> tree(column, ZoneTreeOptions{.zone_size = 16, .fanout = 8});
  EXPECT_EQ(tree.ZoneCount(), 1024);
  EXPECT_GE(tree.LevelCount(), 3);
  EXPECT_GT(tree.MemoryUsageBytes(), 0);
}

TEST(ZoneTreeTest, SortedDataProbesFewEntries) {
  DataGenOptions gen;
  gen.order = DataOrder::kSorted;
  gen.num_rows = 1 << 17;
  gen.value_range = 1 << 20;
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  ZoneTreeT<int64_t> tree(column,
                          ZoneTreeOptions{.zone_size = 256, .fanout = 8});
  ZoneMapT<int64_t> flat(column, ZoneMapOptions{.zone_size = 256});

  Predicate pred = Predicate::Between<int64_t>("x", 500000, 501000);
  std::vector<RowRange> tree_candidates;
  ProbeStats tree_stats;
  tree.Probe(pred, &tree_candidates, &tree_stats);
  std::vector<RowRange> flat_candidates;
  ProbeStats flat_stats;
  flat.Probe(pred, &flat_candidates, &flat_stats);

  // Hierarchical probing touches far fewer metadata entries than flat
  // probing on selective queries over sorted data.
  EXPECT_LT(tree_stats.entries_read, flat_stats.entries_read / 4);
  // But finds exactly the same rows.
  NormalizeRanges(&tree_candidates);
  NormalizeRanges(&flat_candidates);
  EXPECT_EQ(tree_candidates, flat_candidates);
}

TEST(ZoneTreeTest, SkippedZoneAccountingIsComplete) {
  DataGenOptions gen;
  gen.order = DataOrder::kSorted;
  gen.num_rows = 10000;
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  ZoneTreeT<int64_t> tree(column,
                          ZoneTreeOptions{.zone_size = 100, .fanout = 4});
  Predicate pred = Predicate::Between<int64_t>("x", 0, 1000);
  std::vector<RowRange> candidates;
  ProbeStats stats;
  tree.Probe(pred, &candidates, &stats);
  EXPECT_EQ(stats.zones_candidate + stats.zones_skipped, tree.ZoneCount());
}

// Equivalence with the flat zonemap across data orders and fanouts: the
// tree is an access-path optimization, never a semantic change.
struct ZoneTreeCase {
  DataOrder order;
  int64_t fanout;
};

class ZoneTreeEquivalenceTest : public ::testing::TestWithParam<ZoneTreeCase> {
};

TEST_P(ZoneTreeEquivalenceTest, MatchesFlatZoneMap) {
  const ZoneTreeCase& param = GetParam();
  DataGenOptions gen;
  gen.order = param.order;
  gen.num_rows = 30000;
  gen.value_range = 200000;
  gen.seed = 3;
  TypedColumn<int64_t> column(GenerateData<int64_t>(gen));
  ZoneTreeT<int64_t> tree(
      column, ZoneTreeOptions{.zone_size = 128, .fanout = param.fanout});
  ZoneMapT<int64_t> flat(column, ZoneMapOptions{.zone_size = 128});

  Rng rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    int64_t lo = rng.NextInt64(200000);
    int64_t hi = lo + rng.NextInt64(10000);
    Predicate pred = Predicate::Between<int64_t>("x", lo, hi);

    std::vector<RowRange> tree_candidates =
        testing_util::ProbeAndCheckSuperset<int64_t>(&tree, pred,
                                                     column.data());
    std::vector<RowRange> flat_candidates;
    ProbeStats flat_stats;
    flat.Probe(pred, &flat_candidates, &flat_stats);
    NormalizeRanges(&tree_candidates);
    NormalizeRanges(&flat_candidates);
    EXPECT_EQ(tree_candidates, flat_candidates) << pred.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndFanouts, ZoneTreeEquivalenceTest,
    ::testing::Values(ZoneTreeCase{DataOrder::kSorted, 2},
                      ZoneTreeCase{DataOrder::kSorted, 8},
                      ZoneTreeCase{DataOrder::kClustered, 4},
                      ZoneTreeCase{DataOrder::kKSorted, 8},
                      ZoneTreeCase{DataOrder::kUniform, 8},
                      ZoneTreeCase{DataOrder::kRandomWalk, 16},
                      ZoneTreeCase{DataOrder::kSawtooth, 3}));

TEST(ZoneTreeTest, FactoryDispatches) {
  std::unique_ptr<Column> column = MakeColumn<float>({1.0f, 2.0f, 3.0f});
  std::unique_ptr<SkipIndex> index = MakeZoneTree(*column, {});
  EXPECT_EQ(index->name(), "zonetree");
}

}  // namespace
}  // namespace adaskip
