#include <gtest/gtest.h>

#include "adaskip/storage/catalog.h"
#include "adaskip/storage/column.h"
#include "adaskip/storage/data_type.h"
#include "adaskip/storage/table.h"
#include "adaskip/storage/type_dispatch.h"

namespace adaskip {
namespace {

TEST(DataTypeTest, NamesAndWidths) {
  EXPECT_EQ(DataTypeToString(DataType::kInt32), "int32");
  EXPECT_EQ(DataTypeToString(DataType::kInt64), "int64");
  EXPECT_EQ(DataTypeToString(DataType::kFloat32), "float32");
  EXPECT_EQ(DataTypeToString(DataType::kFloat64), "float64");
  EXPECT_EQ(DataTypeWidthBytes(DataType::kInt32), 4);
  EXPECT_EQ(DataTypeWidthBytes(DataType::kInt64), 8);
  EXPECT_EQ(DataTypeWidthBytes(DataType::kFloat32), 4);
  EXPECT_EQ(DataTypeWidthBytes(DataType::kFloat64), 8);
}

TEST(DataTypeTest, TraitsMapCppTypes) {
  EXPECT_EQ(DataTypeTraits<int32_t>::kType, DataType::kInt32);
  EXPECT_EQ(DataTypeTraits<int64_t>::kType, DataType::kInt64);
  EXPECT_EQ(DataTypeTraits<float>::kType, DataType::kFloat32);
  EXPECT_EQ(DataTypeTraits<double>::kType, DataType::kFloat64);
}

TEST(TypeDispatchTest, DispatchReachesEveryType) {
  for (DataType type : {DataType::kInt32, DataType::kInt64,
                        DataType::kFloat32, DataType::kFloat64}) {
    DataType seen = DispatchDataType(type, [](auto tag) {
      using T = typename decltype(tag)::type;
      return DataTypeTraits<T>::kType;
    });
    EXPECT_EQ(seen, type);
  }
}

TEST(TypedColumnTest, AppendAndAccess) {
  TypedColumn<int64_t> column;
  column.Reserve(3);
  column.Append(5);
  column.Append(-2);
  column.Append(7);
  EXPECT_EQ(column.size(), 3);
  EXPECT_EQ(column.type(), DataType::kInt64);
  EXPECT_EQ(column.Get(0), 5);
  EXPECT_EQ(column.Get(1), -2);
  EXPECT_EQ(column.Get(2), 7);
  EXPECT_EQ(column.GetAsDouble(1), -2.0);
  EXPECT_EQ(column.data().size(), 3u);
}

TEST(TypedColumnTest, ConstructFromVector) {
  TypedColumn<double> column({1.5, 2.5});
  EXPECT_EQ(column.size(), 2);
  EXPECT_EQ(column.Get(1), 2.5);
  EXPECT_GT(column.MemoryUsageBytes(), 0);
}

TEST(ColumnTest, CheckedDowncast) {
  std::unique_ptr<Column> column = MakeColumn<int32_t>({1, 2, 3});
  const TypedColumn<int32_t>* typed = column->As<int32_t>();
  EXPECT_EQ(typed->Get(2), 3);
}

TEST(ColumnDeathTest, WrongDowncastAborts) {
  std::unique_ptr<Column> column = MakeColumn<int32_t>({1});
  EXPECT_DEATH({ (void)column->As<double>(); }, "type mismatch");
}

TEST(TableTest, AddColumnsAndSchema) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn("a", MakeColumn<int64_t>({1, 2, 3})).ok());
  ASSERT_TRUE(table.AddColumn("b", MakeColumn<double>({1.0, 2.0, 3.0})).ok());
  EXPECT_EQ(table.num_rows(), 3);
  EXPECT_EQ(table.num_columns(), 2);
  EXPECT_EQ(table.schema()[0], (Field{"a", DataType::kInt64}));
  EXPECT_EQ(table.schema()[1], (Field{"b", DataType::kFloat64}));
  EXPECT_EQ(table.ColumnIndex("a"), 0);
  EXPECT_EQ(table.ColumnIndex("b"), 1);
  EXPECT_EQ(table.ColumnIndex("missing"), -1);
  EXPECT_GT(table.MemoryUsageBytes(), 0);
}

TEST(TableTest, RejectsNullColumn) {
  Table table("t");
  EXPECT_EQ(table.AddColumn("a", nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, RejectsDuplicateName) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn("a", MakeColumn<int64_t>({1})).ok());
  EXPECT_EQ(table.AddColumn("a", MakeColumn<int64_t>({2})).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, RejectsRowCountMismatch) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn("a", MakeColumn<int64_t>({1, 2})).ok());
  EXPECT_EQ(table.AddColumn("b", MakeColumn<int64_t>({1})).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, ColumnByName) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn("a", MakeColumn<float>({1.0f})).ok());
  Result<const Column*> found = table.ColumnByName("a");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->type(), DataType::kFloat32);
  EXPECT_EQ(table.ColumnByName("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, AddGetDrop) {
  Catalog catalog;
  auto table = std::make_shared<Table>("events");
  ASSERT_TRUE(catalog.AddTable(table).ok());
  EXPECT_TRUE(catalog.Contains("events"));
  EXPECT_EQ(catalog.num_tables(), 1);
  Result<std::shared_ptr<Table>> fetched = catalog.GetTable("events");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().get(), table.get());
  EXPECT_EQ(catalog.TableNames(), std::vector<std::string>{"events"});
  ASSERT_TRUE(catalog.DropTable("events").ok());
  EXPECT_FALSE(catalog.Contains("events"));
}

TEST(CatalogTest, Errors) {
  Catalog catalog;
  EXPECT_EQ(catalog.AddTable(nullptr).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog.GetTable("x").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.DropTable("x").code(), StatusCode::kNotFound);
  ASSERT_TRUE(catalog.AddTable(std::make_shared<Table>("t")).ok());
  EXPECT_EQ(catalog.AddTable(std::make_shared<Table>("t")).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace adaskip
