// Segment-layout lifecycle tests: the cost model's choose step
// (DecideSegmentLayout), session-driven adoption at segment-seal time,
// the kSegmentLayout journal trail, and bit-identical replay of the
// adopted layouts onto a fresh column (journal-the-inputs contract of
// adaptive/journal_replay.h).

#include "adaskip/scan/packed_kernels.h"
#include "adaskip/storage/segment_layout.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "adaskip/adaptive/cost_model.h"
#include "adaskip/adaptive/journal_replay.h"
#include "adaskip/engine/session.h"
#include "adaskip/scan/simd/kernel_dispatch.h"
#include "adaskip/storage/table.h"

namespace adaskip {
namespace {

constexpr int64_t kSegmentRows = 1024;

std::vector<int64_t> NarrowValues(int64_t n, int64_t base) {
  std::vector<int64_t> values(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    values[static_cast<size_t>(i)] = base + (i * 13) % 300;
  }
  return values;
}

TEST(DecideSegmentLayoutTest, PacksNarrowSealedSegments) {
  SegmentLayoutPolicy policy;
  policy.min_rows = 1024;
  SegmentLayoutInputs inputs;
  inputs.rows = 1024;
  inputs.bits_required = 9;
  inputs.magnitude_ok = true;
  EXPECT_EQ(DecideSegmentLayout(inputs, policy), SegmentLayout::kPacked);
}

TEST(DecideSegmentLayoutTest, RawWhenSegmentTooSmall) {
  SegmentLayoutPolicy policy;
  policy.min_rows = 4096;
  SegmentLayoutInputs inputs;
  inputs.rows = 1024;
  inputs.bits_required = 9;
  inputs.magnitude_ok = true;
  EXPECT_EQ(DecideSegmentLayout(inputs, policy), SegmentLayout::kRaw);
}

TEST(DecideSegmentLayoutTest, RawWhenRangeTooWideOrMagnitudeTooBig) {
  SegmentLayoutPolicy policy;
  policy.min_rows = 1024;
  SegmentLayoutInputs inputs;
  inputs.rows = 4096;
  inputs.bits_required = 17;  // Needs more than max_bits.
  inputs.magnitude_ok = true;
  EXPECT_EQ(DecideSegmentLayout(inputs, policy), SegmentLayout::kRaw);
  inputs.bits_required = 9;
  inputs.magnitude_ok = false;  // Frame of reference would overflow.
  EXPECT_EQ(DecideSegmentLayout(inputs, policy), SegmentLayout::kRaw);
}

TEST(DecideSegmentLayoutTest, RawWhenQueriesAlwaysSkip) {
  // Query feedback veto: once warmed up, a column whose index already
  // skips (almost) everything gains nothing from faster scans.
  SegmentLayoutPolicy policy;
  policy.min_rows = 1024;
  policy.feedback_warmup = 8;
  policy.skip_saturation = 0.95;
  SegmentLayoutInputs inputs;
  inputs.rows = 4096;
  inputs.bits_required = 9;
  inputs.magnitude_ok = true;
  inputs.queries_observed = 100;
  inputs.skipped_fraction_ewma = 0.99;
  EXPECT_EQ(DecideSegmentLayout(inputs, policy), SegmentLayout::kRaw);
  // Below warmup the veto never fires (the EWMA is still noise).
  inputs.queries_observed = 4;
  EXPECT_EQ(DecideSegmentLayout(inputs, policy), SegmentLayout::kPacked);
  // Warm but genuinely scanning: pack.
  inputs.queries_observed = 100;
  inputs.skipped_fraction_ewma = 0.40;
  EXPECT_EQ(DecideSegmentLayout(inputs, policy), SegmentLayout::kPacked);
}

TEST(SegmentLayoutSessionTest, CostModelAdoptsPackedLayoutsAndJournalsThem) {
  Session session;
  auto table = std::make_shared<Table>("t");
  // 3 sealed segments + a partial tail.
  ADASKIP_CHECK_OK(table->AddColumn(
      "x", MakeColumn(NarrowValues(3 * kSegmentRows + 100, 5000),
                      kSegmentRows)));
  ADASKIP_CHECK_OK(session.RegisterTable(table));

  ExecOptions exec;
  exec.journal_events = true;
  ADASKIP_CHECK_OK(session.SetExecOptions("t", exec));

  SegmentLayoutOptions layout;
  layout.enabled = true;
  layout.policy.min_rows = kSegmentRows;
  ADASKIP_CHECK_OK(session.SetSegmentLayoutOptions("t", layout));

  // Sealed segments packed immediately; the partial tail stays raw.
  const Column& column = table->column(0);
  EXPECT_EQ(column.num_packed_segments(), 3);

  // Appending across the next seal boundary packs the newly sealed
  // segment too.
  ADASKIP_CHECK_OK(
      session.Append<int64_t>("t", "x", NarrowValues(kSegmentRows, 5000)));
  EXPECT_EQ(column.num_packed_segments(), 4);

  // One journal event per evaluated segment, all verdict "packed".
  int packed_events = 0;
  for (const obs::JournalEvent& event : session.journal().Snapshot()) {
    if (event.kind != obs::EventKind::kSegmentLayout) continue;
    EXPECT_EQ(event.scope, "t.x");
    ASSERT_EQ(event.args.size(), 7u);
    EXPECT_EQ(event.detail, "packed");
    EXPECT_EQ(event.args[2], kSegmentRows);
    ++packed_events;
  }
  EXPECT_EQ(packed_events, 4);

  // Queries over the packed column report packed coverage and the same
  // answers as a layout-disabled twin.
  Session twin;
  auto twin_table = std::make_shared<Table>("t");
  ADASKIP_CHECK_OK(twin_table->AddColumn(
      "x", MakeColumn(NarrowValues(3 * kSegmentRows + 100, 5000),
                      kSegmentRows)));
  ADASKIP_CHECK_OK(twin.RegisterTable(twin_table));
  ADASKIP_CHECK_OK(
      twin.Append<int64_t>("t", "x", NarrowValues(kSegmentRows, 5000)));

  for (const auto& query :
       {Query::Count(Predicate::Between<int64_t>("x", 5040, 5120)),
        Query::Sum(Predicate::Between<int64_t>("x", 5000, 5200)),
        Query::Min(Predicate::Between<int64_t>("x", 5010, 5290)),
        Query::Max(Predicate::Between<int64_t>("x", 5010, 5290)),
        Query::Materialize(Predicate::Between<int64_t>("x", 5295, 5299))}) {
    Result<QueryResult> got = session.ExecuteSpec(QuerySpec::Simple("t", query));
    Result<QueryResult> want = twin.ExecuteSpec(QuerySpec::Simple("t", query));
    ADASKIP_CHECK_OK(got);
    ADASKIP_CHECK_OK(want);
    EXPECT_EQ(got.value().count, want.value().count);
    EXPECT_EQ(got.value().sum, want.value().sum);
    EXPECT_EQ(got.value().min, want.value().min);
    EXPECT_EQ(got.value().max, want.value().max);
    ASSERT_EQ(got.value().rows.size(), want.value().rows.size());
    for (int64_t i = 0; i < got.value().rows.size(); ++i) {
      EXPECT_EQ(got.value().rows[i], want.value().rows[i]);
    }
    // 4 packed segments of the 5 (the tail is partial).
    EXPECT_EQ(got.value().stats.rows_scanned_packed, 4 * kSegmentRows);
    EXPECT_EQ(want.value().stats.rows_scanned_packed, 0);
  }

  // Replay: applying the journaled layout events to a fresh column over
  // the same payload reproduces every packed segment bit for bit.
  TypedColumn<int64_t> replayed(kSegmentRows);
  replayed.Append(std::span<const int64_t>(
      NarrowValues(3 * kSegmentRows + 100, 5000)));
  replayed.Append(
      std::span<const int64_t>(NarrowValues(kSegmentRows, 5000)));
  const std::vector<obs::JournalEvent> events = session.journal().Snapshot();
  ASSERT_TRUE(
      ReplaySegmentLayouts(events, "t.x", &replayed).ok());
  const auto* live = table->column(0).As<int64_t>();
  ASSERT_EQ(replayed.num_packed_segments(), live->num_packed_segments());
  for (int64_t s = 0; s < live->num_segments(); ++s) {
    const PackedSegment<int64_t>* a = live->packed_segment(s);
    const PackedSegment<int64_t>* b = replayed.packed_segment(s);
    ASSERT_EQ(a == nullptr, b == nullptr) << "segment " << s;
    if (a == nullptr) continue;
    EXPECT_EQ(a->base, b->base) << "segment " << s;
    EXPECT_EQ(a->bits, b->bits) << "segment " << s;
    EXPECT_EQ(a->rows, b->rows) << "segment " << s;
    EXPECT_EQ(a->words, b->words) << "segment " << s;
  }
}

TEST(SegmentLayoutSessionTest, WideValuesStayRawAndJournalRawVerdicts) {
  Session session;
  auto table = std::make_shared<Table>("t");
  std::vector<int64_t> wide(static_cast<size_t>(2 * kSegmentRows));
  for (size_t i = 0; i < wide.size(); ++i) {
    wide[i] = static_cast<int64_t>(i) * 1000003;  // Range far beyond 16 bits.
  }
  ADASKIP_CHECK_OK(table->AddColumn("x", MakeColumn(wide, kSegmentRows)));
  ADASKIP_CHECK_OK(session.RegisterTable(table));
  ExecOptions exec;
  exec.journal_events = true;
  ADASKIP_CHECK_OK(session.SetExecOptions("t", exec));
  SegmentLayoutOptions layout;
  layout.enabled = true;
  layout.policy.min_rows = kSegmentRows;
  ADASKIP_CHECK_OK(session.SetSegmentLayoutOptions("t", layout));

  EXPECT_EQ(table->column(0).num_packed_segments(), 0);
  int raw_events = 0;
  for (const obs::JournalEvent& event : session.journal().Snapshot()) {
    if (event.kind != obs::EventKind::kSegmentLayout) continue;
    EXPECT_EQ(event.detail, "raw");
    EXPECT_EQ(event.args[3], static_cast<int64_t>(SegmentLayout::kRaw));
    ++raw_events;
  }
  EXPECT_EQ(raw_events, 2);

  // Raw verdicts replay as no-ops.
  TypedColumn<int64_t> replayed(kSegmentRows);
  replayed.Append(std::span<const int64_t>(wide));
  ASSERT_TRUE(ReplaySegmentLayouts(session.journal().Snapshot(), "t.x",
                                   &replayed)
                  .ok());
  EXPECT_EQ(replayed.num_packed_segments(), 0);
}

TEST(SegmentLayoutSessionTest, RejectsNonsensicalPolicies) {
  Session session;
  ADASKIP_CHECK_OK(session.CreateTable("t"));
  ADASKIP_CHECK_OK(session.AddColumn<int64_t>("t", "x", {1, 2, 3}));
  SegmentLayoutOptions layout;
  layout.enabled = true;
  layout.policy.min_rows = 0;
  EXPECT_FALSE(session.SetSegmentLayoutOptions("t", layout).ok());
  layout.policy = {};
  layout.policy.max_bits = 17;
  EXPECT_FALSE(session.SetSegmentLayoutOptions("t", layout).ok());
  layout.policy = {};
  layout.policy.skip_saturation = 1.5;
  EXPECT_FALSE(session.SetSegmentLayoutOptions("t", layout).ok());
  layout.policy = {};
  EXPECT_TRUE(session.SetSegmentLayoutOptions("t", layout).ok());
  EXPECT_FALSE(session.SetSegmentLayoutOptions("missing", layout).ok());
}

/// Asserts all four packed kernels agree bit for bit with the dispatched
/// raw kernels over the same values for one predicate interval.
template <typename T>
void ExpectPackedMatchesRaw(const std::vector<T>& values,
                            ValueInterval<T> interval) {
  const std::span<const T> span(values);
  const SegmentPackPlan<T> plan = PlanSegmentPack(span);
  ASSERT_TRUE(plan.value_range_ok);
  const PackedSegment<T> packed = PackSegment(span, plan.base, plan.bits);
  const RowRange all{0, static_cast<int64_t>(values.size())};
  EXPECT_EQ(PackedCountMatches(packed, all, interval),
            simd::CountMatches(span, all, interval))
      << "count, interval [" << interval.lo << ", " << interval.hi << "]";
  const SumCount<T> packed_sum = PackedSumMatchesCounted(packed, all, interval);
  const SumCount<T> raw_sum = simd::SumMatchesCounted(span, all, interval);
  EXPECT_EQ(packed_sum.count, raw_sum.count);
  EXPECT_EQ(packed_sum.sum, raw_sum.sum);
  const MinMaxCount<T> packed_mm =
      PackedMinMaxMatchesCounted(packed, all, interval);
  const MinMaxCount<T> raw_mm = simd::MinMaxMatchesCounted(span, all, interval);
  EXPECT_EQ(packed_mm.count, raw_mm.count);
  if (raw_mm.count > 0) {
    EXPECT_EQ(packed_mm.min, raw_mm.min);
    EXPECT_EQ(packed_mm.max, raw_mm.max);
  }
  SelectionVector packed_rows;
  SelectionVector raw_rows;
  EXPECT_EQ(
      PackedMaterializeMatches(packed, all, interval, &packed_rows, 1000),
      simd::MaterializeMatches(span, all, interval, &raw_rows, 1000));
  EXPECT_TRUE(packed_rows == raw_rows);
}

// Regression for a 32-bit overflow in predicate translation: a packed
// int32 segment based near INT32_MAX made `base + code_max` wrap
// negative, so every packed kernel returned zero matches.
TEST(PackedKernelExtremesTest, Int32SegmentsAtDomainMax) {
  constexpr int32_t kMax = std::numeric_limits<int32_t>::max();
  constexpr int32_t kMin = std::numeric_limits<int32_t>::min();
  // A sealed segment of constant INT32_MAX sentinels packs at bits=1.
  const std::vector<int32_t> sentinels(256, kMax);
  for (const ValueInterval<int32_t>& interval :
       {ValueInterval<int32_t>{kMin, kMax}, ValueInterval<int32_t>{kMax, kMax},
        ValueInterval<int32_t>{kMin, kMax - 1},
        ValueInterval<int32_t>{kMax - 10, kMax}}) {
    ExpectPackedMatchesRaw(sentinels, interval);
  }
  // A narrow range hugging the top of the domain: the rounded-up code
  // width makes base + CodeMask() exceed INT32_MAX even though every
  // stored value fits.
  std::vector<int32_t> near_max(512);
  for (size_t i = 0; i < near_max.size(); ++i) {
    near_max[i] = kMax - 200 + static_cast<int32_t>((i * 7) % 201);
  }
  for (const ValueInterval<int32_t>& interval :
       {ValueInterval<int32_t>{kMin, kMax},
        ValueInterval<int32_t>{kMax - 100, kMax},
        ValueInterval<int32_t>{kMax, kMax},
        ValueInterval<int32_t>{kMax - 5, kMax - 5},
        ValueInterval<int32_t>{kMin, kMax - 300},
        ValueInterval<int32_t>{kMax - 50, kMax - 150}}) {  // lo > hi: empty.
    ExpectPackedMatchesRaw(near_max, interval);
  }
}

TEST(PackedKernelExtremesTest, Int32SegmentsAtDomainMin) {
  constexpr int32_t kMax = std::numeric_limits<int32_t>::max();
  constexpr int32_t kMin = std::numeric_limits<int32_t>::min();
  std::vector<int32_t> near_min(512);
  for (size_t i = 0; i < near_min.size(); ++i) {
    near_min[i] = kMin + static_cast<int32_t>((i * 7) % 201);
  }
  for (const ValueInterval<int32_t>& interval :
       {ValueInterval<int32_t>{kMin, kMax}, ValueInterval<int32_t>{kMin, kMin},
        ValueInterval<int32_t>{kMin + 50, kMax},
        ValueInterval<int32_t>{kMin + 300, kMax}}) {
    ExpectPackedMatchesRaw(near_min, interval);
  }
}

TEST(PackedKernelExtremesTest, Int64SegmentsAtMagnitudeGuard) {
  constexpr int64_t kMax64 = std::numeric_limits<int64_t>::max();
  constexpr int64_t kMin64 = std::numeric_limits<int64_t>::min();
  std::vector<int64_t> top(256);
  for (size_t i = 0; i < top.size(); ++i) {
    top[i] = kMaxPackedMagnitude - 300 + static_cast<int64_t>((i * 13) % 301);
  }
  std::vector<int64_t> bottom(256);
  for (size_t i = 0; i < bottom.size(); ++i) {
    bottom[i] = -kMaxPackedMagnitude + static_cast<int64_t>((i * 13) % 301);
  }
  for (const ValueInterval<int64_t>& interval :
       {ValueInterval<int64_t>{kMin64, kMax64},
        ValueInterval<int64_t>{kMaxPackedMagnitude, kMax64},
        ValueInterval<int64_t>{kMin64, -kMaxPackedMagnitude}}) {
    ExpectPackedMatchesRaw(top, interval);
    ExpectPackedMatchesRaw(bottom, interval);
  }
}

TEST(PlanSegmentPackTest, FullDomainRangesAreSafeAndStayRaw) {
  // int64 spanning (almost) the whole domain: the min/max difference
  // does not fit signed 64-bit; the plan must still be well-defined.
  const std::vector<int64_t> wide64 = {std::numeric_limits<int64_t>::min(), 0,
                                       std::numeric_limits<int64_t>::max()};
  const SegmentPackPlan<int64_t> plan64 =
      PlanSegmentPack(std::span<const int64_t>(wide64));
  EXPECT_FALSE(plan64.magnitude_ok);
  EXPECT_FALSE(plan64.value_range_ok);
  EXPECT_EQ(plan64.bits, 0);
  // int32 full domain: magnitude always fits, but 32 required bits do not.
  const std::vector<int32_t> wide32 = {std::numeric_limits<int32_t>::min(), 0,
                                       std::numeric_limits<int32_t>::max()};
  const SegmentPackPlan<int32_t> plan32 =
      PlanSegmentPack(std::span<const int32_t>(wide32));
  EXPECT_TRUE(plan32.magnitude_ok);
  EXPECT_FALSE(plan32.value_range_ok);
  EXPECT_EQ(plan32.bits, 0);
  EXPECT_EQ(plan32.bits_required, 32);
}

TEST(SegmentLayoutSessionTest, ReplayRejectsPackedEventOnFloatColumn) {
  obs::JournalEvent event;
  event.kind = obs::EventKind::kSegmentLayout;
  event.scope = "t.x";
  event.args = {0, 0, 4, static_cast<int64_t>(SegmentLayout::kPacked), 8, 0,
                7};
  TypedColumn<double> column(kSegmentRows);
  column.Append(std::span<const double>(std::vector<double>{1, 2, 3, 4}));
  const Status status = ReplaySegmentLayouts(
      std::span<const obs::JournalEvent>(&event, 1), "t.x", &column);
  EXPECT_FALSE(status.ok());
}

obs::JournalEvent PackedLayoutEvent(int64_t segment, int64_t rows, int bits,
                                    int64_t base) {
  obs::JournalEvent event;
  event.kind = obs::EventKind::kSegmentLayout;
  event.scope = "t.x";
  event.args = {segment,
                segment * kSegmentRows,
                rows,
                static_cast<int64_t>(SegmentLayout::kPacked),
                bits,
                base,
                bits};
  return event;
}

TEST(SegmentLayoutReplayTest, RejectsJournalAgainstDriftedData) {
  // Matching data replays cleanly...
  {
    TypedColumn<int64_t> column(kSegmentRows);
    column.Append(std::span<const int64_t>(NarrowValues(kSegmentRows, 5000)));
    const obs::JournalEvent event =
        PackedLayoutEvent(0, kSegmentRows, 16, 5000);
    ASSERT_TRUE(ReplaySegmentLayouts(
                    std::span<const obs::JournalEvent>(&event, 1), "t.x",
                    &column)
                    .ok());
    EXPECT_EQ(column.num_packed_segments(), 1);
  }
  // ...but data that drifted above the recorded width (same row count,
  // one value no longer encodable) is rejected instead of silently
  // corrupting neighboring codes in the packed words.
  {
    std::vector<int64_t> drifted = NarrowValues(kSegmentRows, 5000);
    drifted[17] = 5000 + (int64_t{1} << 16);  // Needs 17 bits.
    TypedColumn<int64_t> column(kSegmentRows);
    column.Append(std::span<const int64_t>(drifted));
    const obs::JournalEvent event =
        PackedLayoutEvent(0, kSegmentRows, 16, 5000);
    const Status status = ReplaySegmentLayouts(
        std::span<const obs::JournalEvent>(&event, 1), "t.x", &column);
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(column.num_packed_segments(), 0);
  }
  // A value below the recorded frame of reference is drift too.
  {
    std::vector<int64_t> drifted = NarrowValues(kSegmentRows, 5000);
    drifted[0] = 4999;
    TypedColumn<int64_t> column(kSegmentRows);
    column.Append(std::span<const int64_t>(drifted));
    const obs::JournalEvent event =
        PackedLayoutEvent(0, kSegmentRows, 16, 5000);
    EXPECT_EQ(ReplaySegmentLayouts(
                  std::span<const obs::JournalEvent>(&event, 1), "t.x",
                  &column)
                  .code(),
              StatusCode::kFailedPrecondition);
  }
  // A corrupt width errors instead of aborting inside PackSegment.
  {
    TypedColumn<int64_t> column(kSegmentRows);
    column.Append(std::span<const int64_t>(NarrowValues(kSegmentRows, 5000)));
    const obs::JournalEvent event = PackedLayoutEvent(0, kSegmentRows, 3, 5000);
    EXPECT_EQ(ReplaySegmentLayouts(
                  std::span<const obs::JournalEvent>(&event, 1), "t.x",
                  &column)
                  .code(),
              StatusCode::kInvalidArgument);
  }
}

void ExpectSameResults(Session& got_session, Session& want_session,
                       const Query& query) {
  Result<QueryResult> got = got_session.ExecuteSpec(QuerySpec::Simple("t", query));
  Result<QueryResult> want = want_session.ExecuteSpec(QuerySpec::Simple("t", query));
  ADASKIP_CHECK_OK(got);
  ADASKIP_CHECK_OK(want);
  EXPECT_EQ(got.value().count, want.value().count);
  EXPECT_EQ(got.value().sum, want.value().sum);
  // min/max are NaN by contract when the query computes no extremum.
  EXPECT_TRUE((std::isnan(got.value().min) && std::isnan(want.value().min)) ||
              got.value().min == want.value().min);
  EXPECT_TRUE((std::isnan(got.value().max) && std::isnan(want.value().max)) ||
              got.value().max == want.value().max);
  ASSERT_EQ(got.value().rows.size(), want.value().rows.size());
  for (int64_t i = 0; i < got.value().rows.size(); ++i) {
    EXPECT_EQ(got.value().rows[i], want.value().rows[i]);
  }
}

// Dropping a packed segment's raw payload (what ADASKIP_PACKED_DROP_RAW
// does at adoption time) must leave every consumer working: point reads,
// single-predicate and conjunction queries, index builds attached after
// the drop, adaptive refinement, and appends.
TEST(DroppedRawPayloadTest, QueriesIndexesAndAppendsSurviveRawDrop) {
  constexpr int64_t kRows = 2 * kSegmentRows + 100;
  auto make_session = [&](Session& session) {
    auto table = std::make_shared<Table>("t");
    ADASKIP_CHECK_OK(
        table->AddColumn("x", MakeColumn(NarrowValues(kRows, 5000),
                                         kSegmentRows)));
    ADASKIP_CHECK_OK(
        table->AddColumn("y", MakeColumn(NarrowValues(kRows, 9000),
                                         kSegmentRows)));
    ADASKIP_CHECK_OK(session.RegisterTable(table));
    return table;
  };
  Session session;
  std::shared_ptr<Table> table = make_session(session);
  Session twin;
  make_session(twin);

  SegmentLayoutOptions layout;
  layout.enabled = true;
  layout.policy.min_rows = kSegmentRows;
  ADASKIP_CHECK_OK(session.SetSegmentLayoutOptions("t", layout));
  auto* x = table->mutable_column(0)->As<int64_t>();
  ASSERT_EQ(x->num_packed_segments(), 2);
  for (int64_t s = 0; s < x->num_segments(); ++s) {
    if (x->packed_segment(s) != nullptr) x->DropRawPayload(s);
  }

  // Point reads unpack transparently.
  EXPECT_EQ(x->Get(0), 5000);
  EXPECT_EQ(x->Get(kSegmentRows + 1), 5000 + ((kSegmentRows + 1) * 13) % 300);
  // SpanOrUnpack serves dropped segments from a scratch buffer and the
  // raw tail directly.
  std::vector<int64_t> scratch;
  EXPECT_EQ(x->SpanOrUnpack(5, 6, &scratch)[0], x->Get(5));
  EXPECT_EQ(x->SpanOrUnpack(2 * kSegmentRows, 2 * kSegmentRows + 1,
                            &scratch)[0],
            x->Get(2 * kSegmentRows));

  Query conjunction = Query::Count(Predicate::Between<int64_t>("x", 5040, 5200));
  conjunction.predicates.push_back(
      Predicate::Between<int64_t>("y", 9000, 9150));
  Query conjunction_rows =
      Query::Materialize(Predicate::Between<int64_t>("x", 5040, 5200));
  conjunction_rows.predicates.push_back(
      Predicate::Between<int64_t>("y", 9000, 9150));
  const std::vector<Query> queries = {
      Query::Count(Predicate::Between<int64_t>("x", 5040, 5120)),
      Query::Sum(Predicate::Between<int64_t>("x", 5000, 5200)),
      Query::Min(Predicate::Between<int64_t>("x", 5010, 5290)),
      Query::Max(Predicate::Between<int64_t>("x", 5010, 5290)),
      Query::Materialize(Predicate::Between<int64_t>("x", 5295, 5299)),
      conjunction,
      conjunction_rows,
  };
  for (const Query& query : queries) ExpectSameResults(session, twin, query);

  // Index builds attached after the drop unpack on demand; results and
  // adaptation stay identical to the raw twin.
  for (const IndexOptions& options :
       {IndexOptions::ZoneMap(256), IndexOptions::Adaptive()}) {
    ADASKIP_CHECK_OK(session.AttachIndex("t", "x", options));
    ADASKIP_CHECK_OK(twin.AttachIndex("t", "x", options));
    for (int round = 0; round < 5; ++round) {
      for (const Query& query : queries) {
        ExpectSameResults(session, twin, query);
      }
    }
  }
  IndexOptions bloom;
  bloom.kind = IndexKind::kBloomZoneMap;
  ADASKIP_CHECK_OK(session.AttachIndex("t", "x", bloom));
  ADASKIP_CHECK_OK(twin.AttachIndex("t", "x", bloom));
  IndexOptions imprints;
  imprints.kind = IndexKind::kImprints;
  ADASKIP_CHECK_OK(session.AttachIndex("t", "y", imprints));
  ADASKIP_CHECK_OK(twin.AttachIndex("t", "y", imprints));
  for (const Query& query : queries) ExpectSameResults(session, twin, query);

  // Appends still work (they only touch the raw tail); the newly sealed
  // segment packs, gets dropped, and queries stay identical.
  AppendBatch batch;
  batch.Add("x", NarrowValues(kSegmentRows, 5000));
  batch.Add("y", NarrowValues(kSegmentRows, 9000));
  ADASKIP_CHECK_OK(session.Append("t", batch));
  AppendBatch twin_batch;
  twin_batch.Add("x", NarrowValues(kSegmentRows, 5000));
  twin_batch.Add("y", NarrowValues(kSegmentRows, 9000));
  ADASKIP_CHECK_OK(twin.Append("t", twin_batch));
  for (int64_t s = 0; s < x->num_segments(); ++s) {
    if (x->packed_segment(s) != nullptr &&
        x->segment(s).size() > 0) {
      x->DropRawPayload(s);
    }
  }
  for (const Query& query : queries) ExpectSameResults(session, twin, query);
}

TEST(DroppedRawPayloadTest, SpanForFailsFastAndDropRequiresPackedLayout) {
  TypedColumn<int64_t> column(kSegmentRows);
  column.Append(std::span<const int64_t>(NarrowValues(kSegmentRows, 5000)));
  EXPECT_DEATH(column.DropRawPayload(0), "without a packed layout");
  const SegmentPackPlan<int64_t> plan = PlanSegmentPack(column.segment(0));
  ASSERT_TRUE(plan.value_range_ok);
  column.AdoptPackedLayout(
      0, PackSegment(column.segment(0), plan.base, plan.bits));
  column.DropRawPayload(0);
  EXPECT_DEATH(column.SpanFor(0, 16), "raw payload dropped");
}

}  // namespace
}  // namespace adaskip
