// Segment-layout lifecycle tests: the cost model's choose step
// (DecideSegmentLayout), session-driven adoption at segment-seal time,
// the kSegmentLayout journal trail, and bit-identical replay of the
// adopted layouts onto a fresh column (journal-the-inputs contract of
// adaptive/journal_replay.h).

#include "adaskip/storage/segment_layout.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "adaskip/adaptive/cost_model.h"
#include "adaskip/adaptive/journal_replay.h"
#include "adaskip/engine/session.h"
#include "adaskip/storage/table.h"

namespace adaskip {
namespace {

constexpr int64_t kSegmentRows = 1024;

std::vector<int64_t> NarrowValues(int64_t n, int64_t base) {
  std::vector<int64_t> values(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    values[static_cast<size_t>(i)] = base + (i * 13) % 300;
  }
  return values;
}

TEST(DecideSegmentLayoutTest, PacksNarrowSealedSegments) {
  SegmentLayoutPolicy policy;
  policy.min_rows = 1024;
  SegmentLayoutInputs inputs;
  inputs.rows = 1024;
  inputs.bits_required = 9;
  inputs.magnitude_ok = true;
  EXPECT_EQ(DecideSegmentLayout(inputs, policy), SegmentLayout::kPacked);
}

TEST(DecideSegmentLayoutTest, RawWhenSegmentTooSmall) {
  SegmentLayoutPolicy policy;
  policy.min_rows = 4096;
  SegmentLayoutInputs inputs;
  inputs.rows = 1024;
  inputs.bits_required = 9;
  inputs.magnitude_ok = true;
  EXPECT_EQ(DecideSegmentLayout(inputs, policy), SegmentLayout::kRaw);
}

TEST(DecideSegmentLayoutTest, RawWhenRangeTooWideOrMagnitudeTooBig) {
  SegmentLayoutPolicy policy;
  policy.min_rows = 1024;
  SegmentLayoutInputs inputs;
  inputs.rows = 4096;
  inputs.bits_required = 17;  // Needs more than max_bits.
  inputs.magnitude_ok = true;
  EXPECT_EQ(DecideSegmentLayout(inputs, policy), SegmentLayout::kRaw);
  inputs.bits_required = 9;
  inputs.magnitude_ok = false;  // Frame of reference would overflow.
  EXPECT_EQ(DecideSegmentLayout(inputs, policy), SegmentLayout::kRaw);
}

TEST(DecideSegmentLayoutTest, RawWhenQueriesAlwaysSkip) {
  // Query feedback veto: once warmed up, a column whose index already
  // skips (almost) everything gains nothing from faster scans.
  SegmentLayoutPolicy policy;
  policy.min_rows = 1024;
  policy.feedback_warmup = 8;
  policy.skip_saturation = 0.95;
  SegmentLayoutInputs inputs;
  inputs.rows = 4096;
  inputs.bits_required = 9;
  inputs.magnitude_ok = true;
  inputs.queries_observed = 100;
  inputs.skipped_fraction_ewma = 0.99;
  EXPECT_EQ(DecideSegmentLayout(inputs, policy), SegmentLayout::kRaw);
  // Below warmup the veto never fires (the EWMA is still noise).
  inputs.queries_observed = 4;
  EXPECT_EQ(DecideSegmentLayout(inputs, policy), SegmentLayout::kPacked);
  // Warm but genuinely scanning: pack.
  inputs.queries_observed = 100;
  inputs.skipped_fraction_ewma = 0.40;
  EXPECT_EQ(DecideSegmentLayout(inputs, policy), SegmentLayout::kPacked);
}

TEST(SegmentLayoutSessionTest, CostModelAdoptsPackedLayoutsAndJournalsThem) {
  Session session;
  auto table = std::make_shared<Table>("t");
  // 3 sealed segments + a partial tail.
  ADASKIP_CHECK_OK(table->AddColumn(
      "x", MakeColumn(NarrowValues(3 * kSegmentRows + 100, 5000),
                      kSegmentRows)));
  ADASKIP_CHECK_OK(session.RegisterTable(table));

  ExecOptions exec;
  exec.journal_events = true;
  ADASKIP_CHECK_OK(session.SetExecOptions("t", exec));

  SegmentLayoutOptions layout;
  layout.enabled = true;
  layout.policy.min_rows = kSegmentRows;
  ADASKIP_CHECK_OK(session.SetSegmentLayoutOptions("t", layout));

  // Sealed segments packed immediately; the partial tail stays raw.
  const Column& column = table->column(0);
  EXPECT_EQ(column.num_packed_segments(), 3);

  // Appending across the next seal boundary packs the newly sealed
  // segment too.
  ADASKIP_CHECK_OK(
      session.Append<int64_t>("t", "x", NarrowValues(kSegmentRows, 5000)));
  EXPECT_EQ(column.num_packed_segments(), 4);

  // One journal event per evaluated segment, all verdict "packed".
  int packed_events = 0;
  for (const obs::JournalEvent& event : session.journal().Snapshot()) {
    if (event.kind != obs::EventKind::kSegmentLayout) continue;
    EXPECT_EQ(event.scope, "t.x");
    ASSERT_EQ(event.args.size(), 7u);
    EXPECT_EQ(event.detail, "packed");
    EXPECT_EQ(event.args[2], kSegmentRows);
    ++packed_events;
  }
  EXPECT_EQ(packed_events, 4);

  // Queries over the packed column report packed coverage and the same
  // answers as a layout-disabled twin.
  Session twin;
  auto twin_table = std::make_shared<Table>("t");
  ADASKIP_CHECK_OK(twin_table->AddColumn(
      "x", MakeColumn(NarrowValues(3 * kSegmentRows + 100, 5000),
                      kSegmentRows)));
  ADASKIP_CHECK_OK(twin.RegisterTable(twin_table));
  ADASKIP_CHECK_OK(
      twin.Append<int64_t>("t", "x", NarrowValues(kSegmentRows, 5000)));

  for (const auto& query :
       {Query::Count(Predicate::Between<int64_t>("x", 5040, 5120)),
        Query::Sum(Predicate::Between<int64_t>("x", 5000, 5200)),
        Query::Min(Predicate::Between<int64_t>("x", 5010, 5290)),
        Query::Max(Predicate::Between<int64_t>("x", 5010, 5290)),
        Query::Materialize(Predicate::Between<int64_t>("x", 5295, 5299))}) {
    Result<QueryResult> got = session.Execute("t", query);
    Result<QueryResult> want = twin.Execute("t", query);
    ADASKIP_CHECK_OK(got);
    ADASKIP_CHECK_OK(want);
    EXPECT_EQ(got.value().count, want.value().count);
    EXPECT_EQ(got.value().sum, want.value().sum);
    EXPECT_EQ(got.value().min, want.value().min);
    EXPECT_EQ(got.value().max, want.value().max);
    ASSERT_EQ(got.value().rows.size(), want.value().rows.size());
    for (int64_t i = 0; i < got.value().rows.size(); ++i) {
      EXPECT_EQ(got.value().rows[i], want.value().rows[i]);
    }
    // 4 packed segments of the 5 (the tail is partial).
    EXPECT_EQ(got.value().stats.rows_scanned_packed, 4 * kSegmentRows);
    EXPECT_EQ(want.value().stats.rows_scanned_packed, 0);
  }

  // Replay: applying the journaled layout events to a fresh column over
  // the same payload reproduces every packed segment bit for bit.
  TypedColumn<int64_t> replayed(kSegmentRows);
  replayed.Append(std::span<const int64_t>(
      NarrowValues(3 * kSegmentRows + 100, 5000)));
  replayed.Append(
      std::span<const int64_t>(NarrowValues(kSegmentRows, 5000)));
  const std::vector<obs::JournalEvent> events = session.journal().Snapshot();
  ASSERT_TRUE(
      ReplaySegmentLayouts(events, "t.x", &replayed).ok());
  const auto* live = table->column(0).As<int64_t>();
  ASSERT_EQ(replayed.num_packed_segments(), live->num_packed_segments());
  for (int64_t s = 0; s < live->num_segments(); ++s) {
    const PackedSegment<int64_t>* a = live->packed_segment(s);
    const PackedSegment<int64_t>* b = replayed.packed_segment(s);
    ASSERT_EQ(a == nullptr, b == nullptr) << "segment " << s;
    if (a == nullptr) continue;
    EXPECT_EQ(a->base, b->base) << "segment " << s;
    EXPECT_EQ(a->bits, b->bits) << "segment " << s;
    EXPECT_EQ(a->rows, b->rows) << "segment " << s;
    EXPECT_EQ(a->words, b->words) << "segment " << s;
  }
}

TEST(SegmentLayoutSessionTest, WideValuesStayRawAndJournalRawVerdicts) {
  Session session;
  auto table = std::make_shared<Table>("t");
  std::vector<int64_t> wide(static_cast<size_t>(2 * kSegmentRows));
  for (size_t i = 0; i < wide.size(); ++i) {
    wide[i] = static_cast<int64_t>(i) * 1000003;  // Range far beyond 16 bits.
  }
  ADASKIP_CHECK_OK(table->AddColumn("x", MakeColumn(wide, kSegmentRows)));
  ADASKIP_CHECK_OK(session.RegisterTable(table));
  ExecOptions exec;
  exec.journal_events = true;
  ADASKIP_CHECK_OK(session.SetExecOptions("t", exec));
  SegmentLayoutOptions layout;
  layout.enabled = true;
  layout.policy.min_rows = kSegmentRows;
  ADASKIP_CHECK_OK(session.SetSegmentLayoutOptions("t", layout));

  EXPECT_EQ(table->column(0).num_packed_segments(), 0);
  int raw_events = 0;
  for (const obs::JournalEvent& event : session.journal().Snapshot()) {
    if (event.kind != obs::EventKind::kSegmentLayout) continue;
    EXPECT_EQ(event.detail, "raw");
    EXPECT_EQ(event.args[3], static_cast<int64_t>(SegmentLayout::kRaw));
    ++raw_events;
  }
  EXPECT_EQ(raw_events, 2);

  // Raw verdicts replay as no-ops.
  TypedColumn<int64_t> replayed(kSegmentRows);
  replayed.Append(std::span<const int64_t>(wide));
  ASSERT_TRUE(ReplaySegmentLayouts(session.journal().Snapshot(), "t.x",
                                   &replayed)
                  .ok());
  EXPECT_EQ(replayed.num_packed_segments(), 0);
}

TEST(SegmentLayoutSessionTest, RejectsNonsensicalPolicies) {
  Session session;
  ADASKIP_CHECK_OK(session.CreateTable("t"));
  ADASKIP_CHECK_OK(session.AddColumn<int64_t>("t", "x", {1, 2, 3}));
  SegmentLayoutOptions layout;
  layout.enabled = true;
  layout.policy.min_rows = 0;
  EXPECT_FALSE(session.SetSegmentLayoutOptions("t", layout).ok());
  layout.policy = {};
  layout.policy.max_bits = 17;
  EXPECT_FALSE(session.SetSegmentLayoutOptions("t", layout).ok());
  layout.policy = {};
  layout.policy.skip_saturation = 1.5;
  EXPECT_FALSE(session.SetSegmentLayoutOptions("t", layout).ok());
  layout.policy = {};
  EXPECT_TRUE(session.SetSegmentLayoutOptions("t", layout).ok());
  EXPECT_FALSE(session.SetSegmentLayoutOptions("missing", layout).ok());
}

TEST(SegmentLayoutSessionTest, ReplayRejectsPackedEventOnFloatColumn) {
  obs::JournalEvent event;
  event.kind = obs::EventKind::kSegmentLayout;
  event.scope = "t.x";
  event.args = {0, 0, 4, static_cast<int64_t>(SegmentLayout::kPacked), 8, 0,
                7};
  TypedColumn<double> column(kSegmentRows);
  column.Append(std::span<const double>(std::vector<double>{1, 2, 3, 4}));
  const Status status = ReplaySegmentLayouts(
      std::span<const obs::JournalEvent>(&event, 1), "t.x", &column);
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace adaskip
