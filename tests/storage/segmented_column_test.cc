// Segmented column storage: segment geometry, live appends, span
// decomposition, and the Table append path (batch validation + data
// versioning). Uses tiny segment sizes so multi-segment behavior is
// exercised without millions of rows.

#include <gtest/gtest.h>

#include <numeric>

#include "adaskip/storage/column.h"
#include "adaskip/storage/table.h"

namespace adaskip {
namespace {

std::vector<int64_t> Iota(int64_t n, int64_t start = 0) {
  std::vector<int64_t> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), start);
  return v;
}

TEST(SegmentedColumnTest, SingleSegmentAdoptsVectorWithoutChunking) {
  TypedColumn<int64_t> column(Iota(100), /*segment_rows=*/128);
  EXPECT_EQ(column.size(), 100);
  EXPECT_EQ(column.num_segments(), 1);
  EXPECT_EQ(column.segment_rows(), 128);
  EXPECT_EQ(column.data().size(), 100u);  // Compat accessor still works.
}

TEST(SegmentedColumnTest, LargePayloadIsChunkedAcrossSegments) {
  TypedColumn<int64_t> column(Iota(1000), /*segment_rows=*/256);
  EXPECT_EQ(column.size(), 1000);
  EXPECT_EQ(column.num_segments(), 4);  // 256+256+256+232.
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(column.Get(i), i) << "row " << i;
  }
  EXPECT_EQ(column.segment(3).size(), 1000u - 3 * 256u);
}

TEST(SegmentedColumnTest, AppendFillsTailThenAllocates) {
  TypedColumn<int64_t> column(/*segment_rows=*/8);
  RowRange r1 = column.Append(std::span<const int64_t>(Iota(5)));
  EXPECT_EQ(r1.begin, 0);
  EXPECT_EQ(r1.end, 5);
  EXPECT_EQ(column.num_segments(), 1);

  // 5 more rows: 3 fill the tail segment, 2 open a new one.
  RowRange r2 = column.Append(std::span<const int64_t>(Iota(5, 5)));
  EXPECT_EQ(r2.begin, 5);
  EXPECT_EQ(r2.end, 10);
  EXPECT_EQ(column.num_segments(), 2);
  for (int64_t i = 0; i < 10; ++i) ASSERT_EQ(column.Get(i), i);
}

TEST(SegmentedColumnTest, AppendExactlyOnSegmentBoundary) {
  TypedColumn<int64_t> column(/*segment_rows=*/8);
  column.Append(std::span<const int64_t>(Iota(8)));
  EXPECT_EQ(column.num_segments(), 1);
  EXPECT_EQ(column.segment(0).size(), 8u);

  RowRange r = column.Append(std::span<const int64_t>(Iota(1, 8)));
  EXPECT_EQ(r.begin, 8);
  EXPECT_EQ(column.num_segments(), 2);
  EXPECT_EQ(column.Get(8), 8);
}

TEST(SegmentedColumnTest, SegmentGeometryHelpers) {
  TypedColumn<int64_t> column(Iota(20), /*segment_rows=*/8);
  EXPECT_EQ(column.SegmentOf(0), 0);
  EXPECT_EQ(column.SegmentOf(7), 0);
  EXPECT_EQ(column.SegmentOf(8), 1);
  EXPECT_EQ(column.NextSegmentBoundary(0), 8);
  EXPECT_EQ(column.NextSegmentBoundary(7), 8);
  EXPECT_EQ(column.NextSegmentBoundary(8), 16);
}

TEST(SegmentedColumnTest, SpanForWithinOneSegment) {
  TypedColumn<int64_t> column(Iota(20), /*segment_rows=*/8);
  std::span<const int64_t> s = column.SpanFor(9, 15);
  ASSERT_EQ(s.size(), 6u);
  EXPECT_EQ(s[0], 9);
  EXPECT_EQ(s[5], 14);
}

TEST(SegmentedColumnTest, ForEachPieceDecomposesAtBoundaries) {
  TypedColumn<int64_t> column(Iota(30), /*segment_rows=*/8);
  std::vector<RowRange> pieces;
  column.ForEachPiece({3, 27}, [&](RowRange p) { pieces.push_back(p); });
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], (RowRange{3, 8}));
  EXPECT_EQ(pieces[1], (RowRange{8, 16}));
  EXPECT_EQ(pieces[2], (RowRange{16, 24}));
  EXPECT_EQ(pieces[3], (RowRange{24, 27}));
  // Every piece is span-addressable and carries the right values.
  for (const RowRange& piece : pieces) {
    std::span<const int64_t> s = column.SpanFor(piece);
    for (int64_t i = 0; i < piece.size(); ++i) {
      ASSERT_EQ(s[static_cast<size_t>(i)], piece.begin + i);
    }
  }
}

TEST(SegmentedColumnTest, SingleRowSegments) {
  TypedColumn<int64_t> column(/*segment_rows=*/1);
  column.Append(std::span<const int64_t>(Iota(5)));
  EXPECT_EQ(column.num_segments(), 5);
  std::vector<RowRange> pieces;
  column.ForEachPiece({0, 5}, [&](RowRange p) { pieces.push_back(p); });
  EXPECT_EQ(pieces.size(), 5u);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(column.Get(i), i);
}

TEST(SegmentedColumnTest, MemoryUsageCountsAllSegments) {
  TypedColumn<int64_t> column(Iota(20), /*segment_rows=*/8);
  EXPECT_GE(column.MemoryUsageBytes(),
            static_cast<int64_t>(20 * sizeof(int64_t)));
}

TEST(TableAppendTest, AppendBumpsDataVersionAndRowCount) {
  Table table("t");
  const int64_t v0 = table.data_version();
  ASSERT_TRUE(table.AddColumn("x", MakeColumn(Iota(10))).ok());
  EXPECT_GT(table.data_version(), v0);
  const int64_t v1 = table.data_version();

  AppendBatch batch;
  batch.Add<int64_t>("x", Iota(5, 10));
  Result<RowRange> appended = table.Append(batch);
  ASSERT_TRUE(appended.ok()) << appended.status();
  EXPECT_EQ(appended->begin, 10);
  EXPECT_EQ(appended->end, 15);
  EXPECT_EQ(table.num_rows(), 15);
  EXPECT_GT(table.data_version(), v1);
}

TEST(TableAppendTest, EmptyBatchIsANoOpWithoutVersionBump) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn("x", MakeColumn(Iota(10))).ok());
  const int64_t v = table.data_version();
  AppendBatch batch;
  batch.Add<int64_t>("x", {});
  Result<RowRange> appended = table.Append(batch);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended->size(), 0);
  EXPECT_EQ(table.data_version(), v);
}

TEST(TableAppendTest, RejectsColumnMismatches) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn("x", MakeColumn(Iota(10))).ok());
  ASSERT_TRUE(table.AddColumn("y", MakeColumn(Iota(10))).ok());

  {
    AppendBatch batch;  // Missing column y.
    batch.Add<int64_t>("x", Iota(5));
    EXPECT_EQ(table.Append(batch).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    AppendBatch batch;  // Unknown column name.
    batch.Add<int64_t>("x", Iota(5));
    batch.Add<int64_t>("zz", Iota(5));
    EXPECT_EQ(table.Append(batch).status().code(), StatusCode::kNotFound);
  }
  {
    AppendBatch batch;  // Unequal row counts.
    batch.Add<int64_t>("x", Iota(5));
    batch.Add<int64_t>("y", Iota(4));
    EXPECT_EQ(table.Append(batch).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    AppendBatch batch;  // Type mismatch.
    batch.Add<int64_t>("x", Iota(5));
    batch.Add<double>("y", {1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_EQ(table.Append(batch).status().code(),
              StatusCode::kInvalidArgument);
  }
  // Nothing was mutated by the failed attempts.
  EXPECT_EQ(table.num_rows(), 10);
}

TEST(TableAppendTest, MultiColumnAppendKeepsColumnsAligned) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn("x", MakeColumn(Iota(10))).ok());
  ASSERT_TRUE(table.AddColumn("y", MakeColumn(Iota(10, 100))).ok());
  AppendBatch batch;
  batch.Add<int64_t>("x", Iota(5, 10));
  batch.Add<int64_t>("y", Iota(5, 110));
  ASSERT_TRUE(table.Append(batch).ok());
  const auto& x = *table.ColumnByName("x").value()->As<int64_t>();
  const auto& y = *table.ColumnByName("y").value()->As<int64_t>();
  for (int64_t i = 0; i < 15; ++i) {
    ASSERT_EQ(x.Get(i), i);
    ASSERT_EQ(y.Get(i), i + 100);
  }
}

TEST(TableAppendTest, AppendToEmptyTableFails) {
  Table table("t");
  AppendBatch batch;
  batch.Add<int64_t>("x", Iota(5));
  EXPECT_EQ(table.Append(batch).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace adaskip
