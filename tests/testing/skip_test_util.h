#ifndef ADASKIP_TESTS_TESTING_SKIP_TEST_UTIL_H_
#define ADASKIP_TESTS_TESTING_SKIP_TEST_UTIL_H_

#include <vector>

#include "adaskip/scan/scan_kernel.h"
#include "adaskip/skipping/skip_index.h"
#include "adaskip/util/interval_set.h"

namespace adaskip {
namespace testing_util {

/// Probes `index` with `pred` and verifies the central skip-index
/// contract against the raw data: candidates are well formed and cover
/// every qualifying row (no false negatives). Returns the candidates.
template <typename T>
std::vector<RowRange> ProbeAndCheckSuperset(SkipIndex* index,
                                            const Predicate& pred,
                                            std::span<const T> values) {
  std::vector<RowRange> candidates;
  ProbeStats stats;
  index->Probe(pred, &candidates, &stats);

  // Well-formed: sorted, disjoint, within bounds.
  int64_t cursor = 0;
  for (const RowRange& r : candidates) {
    EXPECT_GE(r.begin, cursor);
    EXPECT_GT(r.end, r.begin);
    EXPECT_LE(r.end, static_cast<int64_t>(values.size()));
    cursor = r.end;
  }

  // Superset: every qualifying row is covered.
  ValueInterval<T> interval = pred.ToInterval<T>();
  std::vector<RowRange> normalized = candidates;
  NormalizeRanges(&normalized);
  for (int64_t row = 0; row < static_cast<int64_t>(values.size()); ++row) {
    if (interval.Contains(values[static_cast<size_t>(row)])) {
      EXPECT_TRUE(RangesContain(normalized, row))
          << "qualifying row " << row << " not covered for predicate "
          << pred.ToString();
      if (!RangesContain(normalized, row)) break;  // Avoid failure spam.
    }
  }
  return candidates;
}

/// Total rows covered by (possibly adjacent) candidate ranges.
inline int64_t CandidateRows(const std::vector<RowRange>& candidates) {
  int64_t total = 0;
  for (const RowRange& r : candidates) total += r.size();
  return total;
}

}  // namespace testing_util
}  // namespace adaskip

#endif  // ADASKIP_TESTS_TESTING_SKIP_TEST_UTIL_H_
