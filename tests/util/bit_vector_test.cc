#include "adaskip/util/bit_vector.h"

#include <gtest/gtest.h>

#include <set>

#include "adaskip/util/rng.h"

namespace adaskip {
namespace {

TEST(BitVectorTest, EmptyVector) {
  BitVector bv;
  EXPECT_EQ(bv.size(), 0);
  EXPECT_EQ(bv.CountOnes(), 0);
  EXPECT_EQ(bv.FindNextSet(0), -1);
}

TEST(BitVectorTest, InitialValueTrueKeepsTrailingBitsZero) {
  BitVector bv(70, /*initial_value=*/true);
  EXPECT_EQ(bv.CountOnes(), 70);
  for (int64_t i = 0; i < 70; ++i) EXPECT_TRUE(bv.Get(i));
}

TEST(BitVectorTest, SetGetClear) {
  BitVector bv(130);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.CountOnes(), 4);
  bv.Clear(63);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.CountOnes(), 3);
  bv.Assign(63, true);
  EXPECT_TRUE(bv.Get(63));
  bv.Assign(63, false);
  EXPECT_FALSE(bv.Get(63));
}

TEST(BitVectorTest, SetRangeWithinOneWord) {
  BitVector bv(64);
  bv.SetRange(3, 9);
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(bv.Get(i), i >= 3 && i < 9) << i;
  }
}

TEST(BitVectorTest, SetRangeAcrossWords) {
  BitVector bv(256);
  bv.SetRange(60, 200);
  EXPECT_EQ(bv.CountOnes(), 140);
  EXPECT_FALSE(bv.Get(59));
  EXPECT_TRUE(bv.Get(60));
  EXPECT_TRUE(bv.Get(199));
  EXPECT_FALSE(bv.Get(200));
}

TEST(BitVectorTest, SetRangeEmptyIsNoop) {
  BitVector bv(64);
  bv.SetRange(10, 10);
  EXPECT_EQ(bv.CountOnes(), 0);
}

TEST(BitVectorTest, CountOnesInRangeMatchesBruteForce) {
  Rng rng(17);
  BitVector bv(517);
  for (int64_t i = 0; i < 517; ++i) {
    if (rng.NextBool(0.3)) bv.Set(i);
  }
  for (int trial = 0; trial < 200; ++trial) {
    int64_t a = rng.NextInt64(518);
    int64_t b = rng.NextInt64(518);
    if (a > b) std::swap(a, b);
    int64_t expected = 0;
    for (int64_t i = a; i < b; ++i) expected += bv.Get(i);
    EXPECT_EQ(bv.CountOnesInRange(a, b), expected) << a << ".." << b;
  }
}

TEST(BitVectorTest, FindNextSetWalksAllBits) {
  BitVector bv(300);
  std::set<int64_t> expected = {0, 1, 63, 64, 65, 128, 255, 299};
  for (int64_t i : expected) bv.Set(i);
  std::set<int64_t> found;
  for (int64_t i = bv.FindNextSet(0); i >= 0; i = bv.FindNextSet(i + 1)) {
    found.insert(i);
  }
  EXPECT_EQ(found, expected);
}

TEST(BitVectorTest, FindNextSetFromBeyondEnd) {
  BitVector bv(10);
  bv.Set(9);
  EXPECT_EQ(bv.FindNextSet(10), -1);
  EXPECT_EQ(bv.FindNextSet(9), 9);
}

TEST(BitVectorTest, AndOr) {
  BitVector a(100);
  BitVector b(100);
  a.SetRange(0, 50);
  b.SetRange(25, 75);
  BitVector a_and = a;
  a_and.And(b);
  EXPECT_EQ(a_and.CountOnes(), 25);
  EXPECT_TRUE(a_and.Get(25));
  EXPECT_FALSE(a_and.Get(24));
  BitVector a_or = a;
  a_or.Or(b);
  EXPECT_EQ(a_or.CountOnes(), 75);
}

TEST(BitVectorTest, AppendSetIndices) {
  BitVector bv(200);
  bv.Set(5);
  bv.Set(64);
  bv.Set(199);
  std::vector<int64_t> out;
  bv.AppendSetIndices(&out);
  EXPECT_EQ(out, (std::vector<int64_t>{5, 64, 199}));
}

TEST(BitVectorTest, ResetClearsAllBits) {
  BitVector bv(129, true);
  bv.Reset();
  EXPECT_EQ(bv.CountOnes(), 0);
  EXPECT_EQ(bv.size(), 129);
}

TEST(BitVectorTest, EqualityAndCopy) {
  BitVector a(80);
  a.SetRange(10, 20);
  BitVector b = a;
  EXPECT_TRUE(a == b);
  b.Set(70);
  EXPECT_FALSE(a == b);
}

class BitVectorSizeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(BitVectorSizeTest, RandomOperationsMatchReferenceSet) {
  const int64_t size = GetParam();
  Rng rng(static_cast<uint64_t>(size) * 977);
  BitVector bv(size);
  std::set<int64_t> reference;
  for (int op = 0; op < 500; ++op) {
    int64_t i = rng.NextInt64(size);
    if (rng.NextBool(0.5)) {
      bv.Set(i);
      reference.insert(i);
    } else {
      bv.Clear(i);
      reference.erase(i);
    }
  }
  EXPECT_EQ(bv.CountOnes(), static_cast<int64_t>(reference.size()));
  std::vector<int64_t> indices;
  bv.AppendSetIndices(&indices);
  EXPECT_EQ(indices,
            std::vector<int64_t>(reference.begin(), reference.end()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorSizeTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 1000,
                                           4096));

}  // namespace
}  // namespace adaskip
