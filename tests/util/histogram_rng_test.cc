#include <gtest/gtest.h>

#include <cmath>

#include "adaskip/util/histogram.h"
#include "adaskip/util/rng.h"
#include "adaskip/util/stopwatch.h"

namespace adaskip {
namespace {

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(7.5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.Mean(), 7.5);
  EXPECT_EQ(h.Percentile(0), 7.5);
  EXPECT_EQ(h.Percentile(50), 7.5);
  EXPECT_EQ(h.Percentile(100), 7.5);
}

TEST(HistogramTest, PercentilesOfKnownSequence) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(static_cast<double>(i));
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(95), 95.05, 0.1);
  EXPECT_EQ(h.Percentile(100), 100.0);
}

TEST(HistogramTest, AddAfterPercentileInvalidatesSortCache) {
  Histogram h;
  h.Add(10.0);
  EXPECT_EQ(h.Percentile(100), 10.0);
  h.Add(20.0);
  EXPECT_EQ(h.Percentile(100), 20.0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a;
  Histogram b;
  a.Add(1.0);
  a.Add(2.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  EXPECT_EQ(a.max(), 3.0);
}

TEST(HistogramTest, StdDevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Add(4.0);
  EXPECT_DOUBLE_EQ(h.StdDev(), 0.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(1.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  EXPECT_NE(h.Summary().find("n=2"), std::string::npos);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedSamplesStayInBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt64(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt64InRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BoundedSamplesRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  int counts[kBuckets] = {0};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.NextInt64(kBuckets)]++;
  }
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1) << b;
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch sw;
  int64_t t1 = sw.ElapsedNanos();
  int64_t t2 = sw.ElapsedNanos();
  EXPECT_GE(t1, 0);
  EXPECT_GE(t2, t1);
  sw.Restart();
  EXPECT_GE(sw.ElapsedNanos(), 0);
}

TEST(StopwatchTest, UnitConversions) {
  Stopwatch sw;
  // All views of the same clock must be consistent (allowing for the
  // time between calls).
  double ns = static_cast<double>(sw.ElapsedNanos());
  EXPECT_GE(sw.ElapsedMicros() * 1e3, ns * 0.5);
  EXPECT_LE(sw.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace adaskip
