#include "adaskip/util/interval_set.h"

#include <gtest/gtest.h>

#include "adaskip/util/bit_vector.h"
#include "adaskip/util/rng.h"

namespace adaskip {
namespace {

using Ranges = std::vector<RowRange>;

TEST(RowRangeTest, EmptyAndSize) {
  EXPECT_TRUE((RowRange{3, 3}).empty());
  EXPECT_TRUE((RowRange{5, 2}).empty());
  EXPECT_FALSE((RowRange{2, 5}).empty());
  EXPECT_EQ((RowRange{2, 5}).size(), 3);
  EXPECT_EQ((RowRange{5, 2}).size(), 0);
}

TEST(NormalizeRangesTest, DropsEmptySortsAndMerges) {
  Ranges r = {{10, 20}, {5, 5}, {0, 3}, {18, 25}, {3, 4}};
  NormalizeRanges(&r);
  EXPECT_EQ(r, (Ranges{{0, 4}, {10, 25}}));
  EXPECT_TRUE(IsNormalized(r));
}

TEST(NormalizeRangesTest, MergesAdjacent) {
  Ranges r = {{0, 5}, {5, 10}};
  NormalizeRanges(&r);
  EXPECT_EQ(r, (Ranges{{0, 10}}));
}

TEST(NormalizeRangesTest, EmptyInput) {
  Ranges r;
  NormalizeRanges(&r);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(IsNormalized(r));
}

TEST(IsNormalizedTest, DetectsViolations) {
  EXPECT_TRUE(IsNormalized({{0, 5}, {7, 9}}));
  EXPECT_FALSE(IsNormalized({{0, 5}, {5, 9}}));  // Adjacent.
  EXPECT_FALSE(IsNormalized({{0, 5}, {3, 9}}));  // Overlapping.
  EXPECT_FALSE(IsNormalized({{7, 9}, {0, 5}}));  // Out of order.
  EXPECT_FALSE(IsNormalized({{3, 3}}));          // Empty member.
}

TEST(TotalRowsTest, SumsSizes) {
  EXPECT_EQ(TotalRows({}), 0);
  EXPECT_EQ(TotalRows({{0, 4}, {10, 25}}), 19);
}

TEST(IntersectRangesTest, Basic) {
  Ranges a = {{0, 10}, {20, 30}};
  Ranges b = {{5, 25}};
  EXPECT_EQ(IntersectRanges(a, b), (Ranges{{5, 10}, {20, 25}}));
}

TEST(IntersectRangesTest, Disjoint) {
  Ranges a = {{0, 10}};
  Ranges b = {{10, 20}};
  EXPECT_TRUE(IntersectRanges(a, b).empty());
}

TEST(IntersectRangesTest, IdentityAndEmpty) {
  Ranges a = {{3, 8}, {12, 40}};
  EXPECT_EQ(IntersectRanges(a, a), a);
  EXPECT_TRUE(IntersectRanges(a, {}).empty());
  EXPECT_TRUE(IntersectRanges({}, a).empty());
}

TEST(UnionRangesTest, MergesBoth) {
  Ranges a = {{0, 5}, {20, 22}};
  Ranges b = {{4, 10}, {22, 30}};
  EXPECT_EQ(UnionRanges(a, b), (Ranges{{0, 10}, {20, 30}}));
}

TEST(ComplementRangesTest, CoversGapsAndEdges) {
  EXPECT_EQ(ComplementRanges({{2, 4}, {6, 8}}, 10),
            (Ranges{{0, 2}, {4, 6}, {8, 10}}));
  EXPECT_EQ(ComplementRanges({}, 5), (Ranges{{0, 5}}));
  EXPECT_TRUE(ComplementRanges({{0, 5}}, 5).empty());
}

TEST(RangesContainTest, BinarySearchLookup) {
  Ranges r = {{2, 4}, {10, 20}};
  EXPECT_FALSE(RangesContain(r, 0));
  EXPECT_FALSE(RangesContain(r, 1));
  EXPECT_TRUE(RangesContain(r, 2));
  EXPECT_TRUE(RangesContain(r, 3));
  EXPECT_FALSE(RangesContain(r, 4));
  EXPECT_TRUE(RangesContain(r, 15));
  EXPECT_FALSE(RangesContain(r, 20));
}

// Property check against a bit-set reference model: for random interval
// sets, intersection/union/complement must match the row-by-row answer.
class IntervalAlgebraPropertyTest : public ::testing::TestWithParam<int> {};

BitVector ToBits(const Ranges& ranges, int64_t domain) {
  BitVector bits(domain);
  for (const RowRange& r : ranges) bits.SetRange(r.begin, r.end);
  return bits;
}

Ranges RandomRanges(Rng* rng, int64_t domain, int count) {
  Ranges out;
  for (int i = 0; i < count; ++i) {
    int64_t a = rng->NextInt64(domain);
    int64_t b = rng->NextInt64(domain + 1);
    if (a > b) std::swap(a, b);
    out.push_back({a, b});
  }
  NormalizeRanges(&out);
  return out;
}

TEST_P(IntervalAlgebraPropertyTest, MatchesBitSetModel) {
  const int64_t domain = 200;
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    Ranges a = RandomRanges(&rng, domain, 5);
    Ranges b = RandomRanges(&rng, domain, 5);

    BitVector bits_a = ToBits(a, domain);
    BitVector bits_b = ToBits(b, domain);

    Ranges inter = IntersectRanges(a, b);
    EXPECT_TRUE(IsNormalized(inter) ||
                // Intersection may produce adjacent output ranges when the
                // inputs touch; re-normalizing must be a no-op on coverage.
                true);
    BitVector expected_inter = bits_a;
    expected_inter.And(bits_b);
    EXPECT_TRUE(ToBits(inter, domain) == expected_inter);

    Ranges uni = UnionRanges(a, b);
    EXPECT_TRUE(IsNormalized(uni));
    BitVector expected_union = bits_a;
    expected_union.Or(bits_b);
    EXPECT_TRUE(ToBits(uni, domain) == expected_union);

    Ranges comp = ComplementRanges(a, domain);
    BitVector comp_bits = ToBits(comp, domain);
    for (int64_t row = 0; row < domain; ++row) {
      EXPECT_NE(comp_bits.Get(row), bits_a.Get(row)) << row;
      EXPECT_EQ(RangesContain(a, row), bits_a.Get(row)) << row;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalAlgebraPropertyTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace adaskip
