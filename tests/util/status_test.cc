#include "adaskip/util/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace adaskip {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string_view name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Unimplemented("f"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::Internal("g"), StatusCode::kInternal, "Internal"},
      {Status::DataLoss("h"), StatusCode::kDataLoss, "DataLoss"},
      {Status::ResourceExhausted("i"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
      {Status::DeadlineExceeded("j"), StatusCode::kDeadlineExceeded,
       "DeadlineExceeded"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(StatusCodeToString(c.code), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, StreamInsertionUsesToString) {
  std::ostringstream os;
  os << Status::OutOfRange("row 9");
  EXPECT_EQ(os.str(), "OutOfRange: row 9");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

namespace macros {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  ADASKIP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

Result<int> Double(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> Quadruple(int x) {
  ADASKIP_ASSIGN_OR_RETURN(int doubled, Double(x));
  ADASKIP_ASSIGN_OR_RETURN(int quadrupled, Double(doubled));
  return quadrupled;
}

}  // namespace macros

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macros::Chain(1).ok());
  EXPECT_EQ(macros::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacroTest, AssignOrReturnPropagatesAndAssigns) {
  Result<int> ok = macros::Quadruple(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 12);
  Result<int> bad = macros::Quadruple(-3);
  EXPECT_FALSE(bad.ok());
}

TEST(ResultDeathTest, AccessingFailedResultAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.value(); }, "failed Result");
}

}  // namespace
}  // namespace adaskip
