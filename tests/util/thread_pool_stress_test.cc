// ThreadPool stress tests with intentional contention, designed to run
// under -DADASKIP_SANITIZE=thread: many small jobs back-to-back (the
// publish/retire handshake is the hot path), exceptions racing normal
// tasks, per-worker accumulators, and pools being created and destroyed
// while a job is in flight elsewhere. None of these may produce a TSan
// report or a lost task.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "adaskip/util/thread_pool.h"

namespace adaskip {
namespace {

TEST(ThreadPoolStressTest, ManySmallJobsBackToBack) {
  // Tiny jobs maximize contention on the job-publication handshake:
  // workers are still retiring from job k when job k+1 is published.
  ThreadPool pool(8);
  std::atomic<int64_t> total{0};
  int64_t expected = 0;
  for (int job = 0; job < 2000; ++job) {
    const int64_t tasks = 1 + job % 7;
    pool.ParallelFor(tasks, [&](int64_t task, int) {
      total.fetch_add(task + 1, std::memory_order_relaxed);
    });
    expected += tasks * (tasks + 1) / 2;
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPoolStressTest, PerWorkerAccumulatorsNeedNoSynchronization) {
  // The worker index is stable within a task, so plain (non-atomic)
  // per-worker slots must be race-free — exactly how the scan executor
  // accumulates per-worker QueryStats.
  ThreadPool pool(6);
  constexpr int64_t kTasks = 50000;
  std::vector<int64_t> per_worker(static_cast<size_t>(pool.num_workers()), 0);
  pool.ParallelFor(kTasks, [&](int64_t task, int worker) {
    per_worker[static_cast<size_t>(worker)] += task;
  });
  const int64_t sum =
      std::accumulate(per_worker.begin(), per_worker.end(), int64_t{0});
  EXPECT_EQ(sum, kTasks * (kTasks - 1) / 2);
}

TEST(ThreadPoolStressTest, ExceptionsRaceNormalTasks) {
  // A task throws while others are mid-flight; the pool must stop the
  // job, rethrow exactly one exception on the coordinator, and stay
  // usable for the next job.
  ThreadPool pool(8);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> ran{0};
    try {
      pool.ParallelFor(64, [&](int64_t task, int) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (task == 13) throw std::runtime_error("boom");
      });
      FAIL() << "expected the task exception to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom");
    }
    // Remaining tasks may be skipped, but the throwing one ran.
    EXPECT_GE(ran.load(), 1);

    // The pool recovers: the next job completes fully.
    std::atomic<int64_t> after{0};
    pool.ParallelFor(32, [&](int64_t, int) {
      after.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(after.load(), 32);
  }
}

TEST(ThreadPoolStressTest, ConcurrentIndependentPools) {
  // Pools are independent: driving several from their own coordinator
  // threads at once must not interfere. (Each pool still has ONE
  // coordinator — that contract is unchanged.)
  constexpr int kPools = 4;
  std::vector<int64_t> results(kPools, 0);
  {
    ThreadPool drivers(kPools + 1);
    drivers.ParallelFor(kPools, [&](int64_t which, int) {
      ThreadPool inner(3);
      std::atomic<int64_t> sum{0};
      for (int job = 0; job < 50; ++job) {
        inner.ParallelFor(100, [&](int64_t task, int) {
          sum.fetch_add(task, std::memory_order_relaxed);
        });
      }
      results[static_cast<size_t>(which)] = sum.load();
    });
  }
  for (int64_t r : results) {
    EXPECT_EQ(r, 50 * (100 * 99 / 2));
  }
}

TEST(ThreadPoolStressTest, RapidConstructDestroy) {
  // Teardown races worker startup: a pool destroyed immediately (with
  // and without having run a job) must join cleanly.
  for (int round = 0; round < 100; ++round) {
    ThreadPool idle(4);
  }
  for (int round = 0; round < 100; ++round) {
    ThreadPool busy(4);
    std::atomic<int64_t> count{0};
    busy.ParallelFor(16, [&](int64_t, int) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 16);
  }
}

TEST(ThreadPoolStressTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 1);
  int64_t sum = 0;  // Plain: everything runs on this thread.
  pool.ParallelFor(1000, [&](int64_t task, int worker) {
    EXPECT_EQ(worker, 0);
    sum += task;
  });
  EXPECT_EQ(sum, 1000 * 999 / 2);
}

}  // namespace
}  // namespace adaskip
