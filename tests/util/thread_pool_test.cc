#include "adaskip/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace adaskip {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  constexpr int64_t kTasks = 1000;
  std::vector<std::atomic<int>> runs(kTasks);
  pool.ParallelFor(kTasks, [&](int64_t task, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    runs[static_cast<size_t>(task)].fetch_add(1);
  });
  for (int64_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(runs[static_cast<size_t>(t)].load(), 1) << "task " << t;
  }
}

TEST(ThreadPoolTest, PerWorkerAccumulatorsNeedNoSynchronization) {
  ThreadPool pool(3);
  constexpr int64_t kTasks = 500;
  std::vector<int64_t> per_worker(static_cast<size_t>(pool.num_workers()), 0);
  pool.ParallelFor(kTasks, [&](int64_t task, int worker) {
    per_worker[static_cast<size_t>(worker)] += task;
  });
  int64_t total = std::accumulate(per_worker.begin(), per_worker.end(),
                                  static_cast<int64_t>(0));
  EXPECT_EQ(total, kTasks * (kTasks - 1) / 2);
}

TEST(ThreadPoolTest, EmptyTaskSetIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](int64_t, int) { ran = true; });
  pool.ParallelFor(-5, [&](int64_t, int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 1);
  std::vector<int64_t> order;
  pool.ParallelFor(8, [&](int64_t task, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(task);
  });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1);
  int64_t sum = 0;
  pool.ParallelFor(4, [&](int64_t task, int) { sum += task; });
  EXPECT_EQ(sum, 6);
}

TEST(ThreadPoolTest, PropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](int64_t task, int) {
                         if (task == 37) {
                           throw std::runtime_error("task 37 failed");
                         }
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, UsableAfterAnException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   64, [&](int64_t, int) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int64_t> count{0};
  pool.ParallelFor(64, [&](int64_t, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromTheInlinePath) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(
                   4, [&](int64_t, int) { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

// The executor reuses one pool for every query; hammer that pattern.
TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    const int64_t tasks = 1 + round % 37;
    std::vector<std::atomic<int>> runs(static_cast<size_t>(tasks));
    pool.ParallelFor(tasks,
                     [&](int64_t task, int) {
                       runs[static_cast<size_t>(task)].fetch_add(1);
                     });
    for (int64_t t = 0; t < tasks; ++t) {
      ASSERT_EQ(runs[static_cast<size_t>(t)].load(), 1)
          << "round " << round << " task " << t;
    }
  }
}

TEST(ThreadPoolTest, ManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  constexpr int64_t kTasks = 10000;
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(kTasks, [&](int64_t task, int) { sum.fetch_add(task); });
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

}  // namespace
}  // namespace adaskip
