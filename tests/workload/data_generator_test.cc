#include "adaskip/workload/data_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace adaskip {
namespace {

DataGenOptions Base(DataOrder order) {
  DataGenOptions options;
  options.order = order;
  options.num_rows = 50000;
  options.value_range = 1000000;
  options.seed = 123;
  return options;
}

TEST(DataGeneratorTest, DeterministicInSeed) {
  std::vector<int64_t> a = GenerateData<int64_t>(Base(DataOrder::kUniform));
  std::vector<int64_t> b = GenerateData<int64_t>(Base(DataOrder::kUniform));
  EXPECT_EQ(a, b);
  DataGenOptions other = Base(DataOrder::kUniform);
  other.seed = 124;
  EXPECT_NE(GenerateData<int64_t>(other), a);
}

TEST(DataGeneratorTest, RespectsRowCountAndRange) {
  for (DataOrder order :
       {DataOrder::kSorted, DataOrder::kReverseSorted, DataOrder::kKSorted,
        DataOrder::kClustered, DataOrder::kRandomWalk, DataOrder::kSawtooth,
        DataOrder::kZipf, DataOrder::kUniform, DataOrder::kAlmostSorted}) {
    DataGenOptions options = Base(order);
    options.num_rows = 5000;
    std::vector<int64_t> values = GenerateData<int64_t>(options);
    ASSERT_EQ(values.size(), 5000u) << DataOrderToString(order);
    for (int64_t v : values) {
      ASSERT_GE(v, 0) << DataOrderToString(order);
      ASSERT_LT(v, options.value_range) << DataOrderToString(order);
    }
  }
}

TEST(DataGeneratorTest, EmptyColumn) {
  DataGenOptions options = Base(DataOrder::kSorted);
  options.num_rows = 0;
  EXPECT_TRUE(GenerateData<int64_t>(options).empty());
}

TEST(DataGeneratorTest, SortedIsSorted) {
  std::vector<int64_t> values = GenerateData<int64_t>(Base(DataOrder::kSorted));
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  EXPECT_EQ(DisorderFraction(values), 0.0);
}

TEST(DataGeneratorTest, ReverseSortedIsDescending) {
  std::vector<int64_t> values =
      GenerateData<int64_t>(Base(DataOrder::kReverseSorted));
  EXPECT_TRUE(
      std::is_sorted(values.begin(), values.end(), std::greater<int64_t>()));
}

TEST(DataGeneratorTest, KSortedIsSemiSorted) {
  DataGenOptions options = Base(DataOrder::kKSorted);
  options.k_sorted_window = 512;
  std::vector<int64_t> values = GenerateData<int64_t>(options);
  // Not sorted any more...
  EXPECT_GT(DisorderFraction(values), 0.05);
  // ...but every value stays within the window of its sorted position:
  // position i must hold a value bounded by the sorted values one window
  // away on each side.
  std::vector<int64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const int64_t n = static_cast<int64_t>(values.size());
  const int64_t k = options.k_sorted_window;
  for (int64_t i = 0; i < n; i += 97) {
    int64_t lo = sorted[static_cast<size_t>(std::max<int64_t>(0, i - k))];
    int64_t hi = sorted[static_cast<size_t>(std::min(n - 1, i + k))];
    ASSERT_GE(values[static_cast<size_t>(i)], lo) << i;
    ASSERT_LE(values[static_cast<size_t>(i)], hi) << i;
  }
  // Global order: quantile positions remain roughly monotone.
  EXPECT_LT(values[1000], values[49000]);
}

TEST(DataGeneratorTest, UniformIsDisordered) {
  std::vector<int64_t> values =
      GenerateData<int64_t>(Base(DataOrder::kUniform));
  EXPECT_NEAR(DisorderFraction(values), 0.5, 0.02);
}

TEST(DataGeneratorTest, ClusteredHasNarrowRuns) {
  DataGenOptions options = Base(DataOrder::kClustered);
  options.num_clusters = 50;
  options.cluster_width_fraction = 0.01;
  std::vector<int64_t> values = GenerateData<int64_t>(options);
  const int64_t run = options.num_rows / options.num_clusters;
  const double width =
      options.cluster_width_fraction * static_cast<double>(options.value_range);
  // Every run's spread is bounded by the cluster width.
  for (int64_t c = 0; c < options.num_clusters; ++c) {
    auto begin = values.begin() + c * run;
    auto end = begin + run;
    auto [mn, mx] = std::minmax_element(begin, end);
    EXPECT_LE(*mx - *mn, static_cast<int64_t>(width) + 1) << "cluster " << c;
  }
  // Clusters cover diverse regions of the domain.
  auto [global_min, global_max] =
      std::minmax_element(values.begin(), values.end());
  EXPECT_GT(*global_max - *global_min, options.value_range / 2);
}

TEST(DataGeneratorTest, RandomWalkHasSmallSteps) {
  DataGenOptions options = Base(DataOrder::kRandomWalk);
  options.walk_step_fraction = 0.0001;
  std::vector<int64_t> values = GenerateData<int64_t>(options);
  const double step_bound =
      10.0 * options.walk_step_fraction * static_cast<double>(options.value_range);
  for (size_t i = 1; i < values.size(); ++i) {
    ASSERT_LE(std::abs(values[i] - values[i - 1]),
              static_cast<int64_t>(step_bound))
        << i;
  }
}

TEST(DataGeneratorTest, SawtoothIsPeriodic) {
  DataGenOptions options = Base(DataOrder::kSawtooth);
  options.sawtooth_period = 1000;
  std::vector<int64_t> values = GenerateData<int64_t>(options);
  EXPECT_EQ(values[0], values[1000]);
  EXPECT_EQ(values[123], values[1123]);
  EXPECT_LT(values[0], values[999]);  // Ascending ramp within the period.
}

TEST(DataGeneratorTest, ZipfHasHeavyHitters) {
  DataGenOptions options = Base(DataOrder::kZipf);
  options.zipf_theta = 0.9;
  std::vector<int64_t> values = GenerateData<int64_t>(options);
  std::map<int64_t, int64_t> freq;
  for (int64_t v : values) ++freq[v];
  int64_t top = 0;
  for (const auto& [value, count] : freq) top = std::max(top, count);
  // The most popular value dominates under theta=0.9.
  EXPECT_GT(top, options.num_rows / 50);
  // But the support is not degenerate.
  EXPECT_GT(freq.size(), 100u);
}

TEST(DataGeneratorTest, FloatTypesWork) {
  std::vector<double> doubles =
      GenerateData<double>(Base(DataOrder::kRandomWalk));
  EXPECT_EQ(doubles.size(), 50000u);
  std::vector<float> floats = GenerateData<float>(Base(DataOrder::kSorted));
  EXPECT_TRUE(std::is_sorted(floats.begin(), floats.end()));
}

TEST(DataOrderTest, Names) {
  EXPECT_EQ(DataOrderToString(DataOrder::kSorted), "sorted");
  EXPECT_EQ(DataOrderToString(DataOrder::kReverseSorted), "reverse-sorted");
  EXPECT_EQ(DataOrderToString(DataOrder::kKSorted), "k-sorted");
  EXPECT_EQ(DataOrderToString(DataOrder::kClustered), "clustered");
  EXPECT_EQ(DataOrderToString(DataOrder::kRandomWalk), "random-walk");
  EXPECT_EQ(DataOrderToString(DataOrder::kSawtooth), "sawtooth");
  EXPECT_EQ(DataOrderToString(DataOrder::kZipf), "zipf");
  EXPECT_EQ(DataOrderToString(DataOrder::kUniform), "uniform");
  EXPECT_EQ(DataOrderToString(DataOrder::kAlmostSorted), "almost-sorted");
}

TEST(DataGeneratorTest, AlmostSortedHasFewOutliers) {
  DataGenOptions options = Base(DataOrder::kAlmostSorted);
  options.outlier_fraction = 0.001;
  std::vector<int64_t> values = GenerateData<int64_t>(options);
  // Nearly all adjacent pairs stay in order: each swapped pair disturbs a
  // handful of adjacencies out of 50k.
  double disorder = DisorderFraction(values);
  EXPECT_GT(disorder, 0.0);
  EXPECT_LT(disorder, 0.01);
}

TEST(DataGeneratorTest, AlmostSortedWithZeroOutliersIsSorted) {
  DataGenOptions options = Base(DataOrder::kAlmostSorted);
  options.outlier_fraction = 0.0;
  std::vector<int64_t> values = GenerateData<int64_t>(options);
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
}

TEST(DisorderFractionTest, EdgeCases) {
  EXPECT_EQ(DisorderFraction(std::vector<int64_t>{}), 0.0);
  EXPECT_EQ(DisorderFraction(std::vector<int64_t>{5}), 0.0);
  EXPECT_EQ(DisorderFraction(std::vector<int64_t>{1, 2, 3}), 0.0);
  EXPECT_EQ(DisorderFraction(std::vector<int64_t>{3, 2, 1}), 1.0);
}

}  // namespace
}  // namespace adaskip
