// Mixed ingest/query workload generator and runner: the op stream must
// tile the appended tail exactly, and runs that differ only in skip
// structure (or in ingest schedule) must produce identical query answers.

#include "adaskip/workload/mixed_workload.h"

#include <gtest/gtest.h>

#include <memory>

namespace adaskip {
namespace {

MixedWorkloadOptions SmallOptions() {
  MixedWorkloadOptions options;
  options.data.order = DataOrder::kClustered;
  options.data.num_rows = 4000;
  options.data.value_range = 50000;
  options.data.seed = 5;
  options.queries.selectivity = 0.05;
  options.queries.seed = 17;
  options.initial_fraction = 0.75;
  options.num_appends = 3;
  options.warmup_queries = 10;
  options.queries_between_appends = 5;
  options.queries_after_last_append = 20;
  return options;
}

TEST(MixedWorkloadTest, OpsTileTheTailAndCountQueries) {
  MixedWorkloadOptions options = SmallOptions();
  MixedWorkload<int64_t> workload =
      GenerateMixedWorkload<int64_t>("x", options);

  EXPECT_EQ(static_cast<int64_t>(workload.data.size()), 4000);
  EXPECT_EQ(workload.initial_rows, 3000);
  // Append ranges are contiguous, in order, and cover exactly the tail.
  int64_t cursor = workload.initial_rows;
  int64_t num_appends = 0;
  for (const MixedOp& op : workload.ops) {
    if (!op.is_append) continue;
    EXPECT_EQ(op.append.begin, cursor);
    EXPECT_GT(op.append.end, op.append.begin);
    cursor = op.append.end;
    ++num_appends;
  }
  EXPECT_EQ(cursor, 4000);
  EXPECT_EQ(num_appends, 3);
  // 10 warmup + 5 + 5 between appends + 20 recovery.
  EXPECT_EQ(workload.num_queries(), 40);
  EXPECT_EQ(static_cast<int64_t>(workload.ops.size()), 43);
}

TEST(MixedWorkloadTest, NoTailMeansNoAppendOps) {
  MixedWorkloadOptions options = SmallOptions();
  options.initial_fraction = 1.0;
  MixedWorkload<int64_t> workload =
      GenerateMixedWorkload<int64_t>("x", options);
  for (const MixedOp& op : workload.ops) EXPECT_FALSE(op.is_append);
  EXPECT_EQ(workload.num_queries(), 30);  // Warmup + recovery only.
}

// Runs `workload` in a fresh session with the given index and exec
// options, loading data[0, initial_rows) up front.
MixedRunResult RunWith(const MixedWorkload<int64_t>& workload,
                       const IndexOptions& index,
                       const ExecOptions& exec = {}) {
  Session session;
  ADASKIP_CHECK_OK(session.CreateTable("t"));
  ADASKIP_CHECK_OK(session.AddColumn<int64_t>(
      "t", workload.column_name,
      std::vector<int64_t>(workload.data.begin(),
                           workload.data.begin() + workload.initial_rows)));
  ADASKIP_CHECK_OK(session.AttachIndex("t", workload.column_name, index));
  ADASKIP_CHECK_OK(session.SetExecOptions("t", exec));
  Result<MixedRunResult> run = RunMixedWorkload(&session, "t", workload);
  ADASKIP_CHECK_OK(run.status());
  return *std::move(run);
}

TEST(MixedWorkloadTest, AllArmsProduceIdenticalChecksums) {
  MixedWorkload<int64_t> workload =
      GenerateMixedWorkload<int64_t>("x", SmallOptions());

  AdaptiveOptions adaptive;
  adaptive.initial_zone_size = 512;
  adaptive.min_zone_size = 64;
  ExecOptions parallel;
  parallel.num_threads = 4;
  parallel.morsel_rows = 512;

  MixedRunResult fullscan = RunWith(workload, IndexOptions::FullScan());
  MixedRunResult zonemap = RunWith(workload, IndexOptions::ZoneMap(256));
  MixedRunResult adapt = RunWith(workload, IndexOptions::Adaptive(adaptive));
  MixedRunResult adapt_parallel =
      RunWith(workload, IndexOptions::Adaptive(adaptive), parallel);

  // The skip structure and the threading model change performance, never
  // answers: per-query counts (folded into the checksum) must agree.
  EXPECT_EQ(fullscan.result_checksum, zonemap.result_checksum);
  EXPECT_EQ(fullscan.result_checksum, adapt.result_checksum);
  EXPECT_EQ(fullscan.result_checksum, adapt_parallel.result_checksum);
  EXPECT_GT(fullscan.result_checksum, 0.0);

  // Bookkeeping: one latency sample per query, appends at the recorded
  // positions (after warmup, then every queries_between_appends).
  EXPECT_EQ(static_cast<int64_t>(adapt.per_query_micros.size()),
            workload.num_queries());
  EXPECT_EQ(adapt.append_at, (std::vector<int64_t>{10, 15, 20}));
  EXPECT_GT(adapt.final_zone_count, 1);

  // Tail accounting: right after an append the adaptive index covers the
  // new rows only with catch-all metadata; queries report that tail and
  // it eventually drains to zero as the structure absorbs the rows.
  int64_t first_post_append = adapt.append_at[0];
  EXPECT_GT(adapt.per_query_tail_rows[static_cast<size_t>(first_post_append)],
            0);
  EXPECT_EQ(adapt.per_query_tail_rows.back(), 0);
  // A static zonemap is extended synchronously: never any tail.
  for (int64_t tail : zonemap.per_query_tail_rows) EXPECT_EQ(tail, 0);
}

TEST(MixedWorkloadTest, MixedRunMatchesAllUpfrontRun) {
  // (load all, query) ≡ (load prefix, query, append rest, query): replay
  // the stream's query ops against a fully loaded table and compare the
  // fully-ingested suffix answer-by-answer with the mixed arm. (Queries
  // before the last append legitimately see fewer rows in the mixed arm,
  // so only the suffix is comparable.)
  MixedWorkload<int64_t> workload =
      GenerateMixedWorkload<int64_t>("x", SmallOptions());

  auto suffix_counts = [&](Session& session,
                           bool play_appends) -> std::vector<int64_t> {
    std::vector<int64_t> counts;
    int64_t appends_done = 0;
    for (const MixedOp& op : workload.ops) {
      if (op.is_append) {
        if (play_appends) {
          std::vector<int64_t> chunk(
              workload.data.begin() + static_cast<size_t>(op.append.begin),
              workload.data.begin() + static_cast<size_t>(op.append.end));
          ADASKIP_CHECK_OK(
              session.Append<int64_t>("t", "x", std::move(chunk)));
        }
        ++appends_done;
        continue;
      }
      Result<QueryResult> result =
          session.ExecuteSpec(QuerySpec::Simple("t", Query::Count(op.query)));
      ADASKIP_CHECK_OK(result.status());
      if (appends_done == 3) counts.push_back(result->count);
    }
    return counts;
  };

  Session full;
  ADASKIP_CHECK_OK(full.CreateTable("t"));
  ADASKIP_CHECK_OK(full.AddColumn<int64_t>("t", "x", workload.data));
  ADASKIP_CHECK_OK(full.AttachIndex("t", "x", IndexOptions::ZoneMap(256)));

  Session mixed;
  ADASKIP_CHECK_OK(mixed.CreateTable("t"));
  ADASKIP_CHECK_OK(mixed.AddColumn<int64_t>(
      "t", "x",
      std::vector<int64_t>(workload.data.begin(),
                           workload.data.begin() + workload.initial_rows)));
  ADASKIP_CHECK_OK(mixed.AttachIndex("t", "x", IndexOptions::ZoneMap(256)));

  std::vector<int64_t> upfront = suffix_counts(full, /*play_appends=*/false);
  std::vector<int64_t> incremental =
      suffix_counts(mixed, /*play_appends=*/true);
  ASSERT_EQ(upfront.size(), 20u);  // queries_after_last_append.
  EXPECT_EQ(upfront, incremental);
}

}  // namespace
}  // namespace adaskip
