#include "adaskip/workload/query_generator.h"

#include <gtest/gtest.h>

#include "adaskip/scan/scan_kernel.h"
#include "adaskip/workload/data_generator.h"

namespace adaskip {
namespace {

std::vector<int64_t> TestData(DataOrder order) {
  DataGenOptions gen;
  gen.order = order;
  gen.num_rows = 100000;
  gen.value_range = 1000000;
  gen.seed = 5;
  return GenerateData<int64_t>(gen);
}

double MeasuredSelectivity(const std::vector<int64_t>& data,
                           const Predicate& pred) {
  ValueInterval<int64_t> interval = pred.ToInterval<int64_t>();
  int64_t matches = reference::CountMatches(
      std::span<const int64_t>(data), {0, static_cast<int64_t>(data.size())},
      interval);
  return static_cast<double>(matches) / static_cast<double>(data.size());
}

TEST(QueryGeneratorTest, DeterministicInSeed) {
  std::vector<int64_t> data = TestData(DataOrder::kUniform);
  QueryGenOptions options;
  options.seed = 9;
  QueryGenerator<int64_t> a("x", data, options);
  QueryGenerator<int64_t> b("x", data, options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Next().ToString(), b.Next().ToString());
  }
}

TEST(QueryGeneratorTest, PredicatesTargetTheColumn) {
  std::vector<int64_t> data = TestData(DataOrder::kUniform);
  QueryGenerator<int64_t> gen("price", data, {});
  Predicate pred = gen.Next();
  EXPECT_EQ(pred.column, "price");
  EXPECT_EQ(pred.op, CompareOp::kBetween);
}

// Selectivity must track the target across data distributions — the
// quantile construction is exactly what makes experiments comparable
// across orders.
struct SelectivityCase {
  DataOrder order;
  double selectivity;
};

class QuerySelectivityTest
    : public ::testing::TestWithParam<SelectivityCase> {};

TEST_P(QuerySelectivityTest, MeasuredSelectivityTracksTarget) {
  const SelectivityCase& param = GetParam();
  std::vector<int64_t> data = TestData(param.order);
  QueryGenOptions options;
  options.selectivity = param.selectivity;
  options.seed = 21;
  QueryGenerator<int64_t> gen("x", data, options);
  double total = 0.0;
  const int kQueries = 50;
  for (int i = 0; i < kQueries; ++i) {
    total += MeasuredSelectivity(data, gen.Next());
  }
  double mean = total / kQueries;
  // Within 40% relative (duplicates and sampling shift individual
  // queries; the mean is what matters for workload construction).
  EXPECT_NEAR(mean, param.selectivity, param.selectivity * 0.4)
      << DataOrderToString(param.order);
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndSelectivities, QuerySelectivityTest,
    ::testing::Values(SelectivityCase{DataOrder::kUniform, 0.01},
                      SelectivityCase{DataOrder::kUniform, 0.10},
                      SelectivityCase{DataOrder::kSorted, 0.01},
                      SelectivityCase{DataOrder::kClustered, 0.05},
                      SelectivityCase{DataOrder::kZipf, 0.05},
                      SelectivityCase{DataOrder::kRandomWalk, 0.02}));

TEST(QueryGeneratorTest, SkewedPatternConcentratesQueries) {
  std::vector<int64_t> data = TestData(DataOrder::kUniform);
  QueryGenOptions options;
  options.pattern = QueryPattern::kSkewed;
  options.selectivity = 0.001;
  options.hot_fraction = 0.05;
  options.hot_probability = 0.9;
  options.hot_center = 0.3;
  QueryGenerator<int64_t> gen("x", data, options);
  int64_t hot_lo = gen.QuantileValue(0.3 - 0.05);
  int64_t hot_hi = gen.QuantileValue(0.3 + 0.1);
  int inside = 0;
  const int kQueries = 200;
  for (int i = 0; i < kQueries; ++i) {
    Predicate pred = gen.Next();
    int64_t lo = Predicate::ScalarAs<int64_t>(pred.lower);
    if (lo >= hot_lo && lo <= hot_hi) ++inside;
  }
  EXPECT_GT(inside, kQueries / 2);
}

TEST(QueryGeneratorTest, DriftingPatternMovesTheHotCenter) {
  std::vector<int64_t> data = TestData(DataOrder::kUniform);
  QueryGenOptions options;
  options.pattern = QueryPattern::kDrifting;
  options.hot_center = 0.1;
  options.drift_per_query = 0.002;
  QueryGenerator<int64_t> gen("x", data, options);
  double start = gen.hot_center();
  for (int i = 0; i < 100; ++i) gen.Next();
  EXPECT_NEAR(gen.hot_center(), start + 0.2, 1e-9);
  // Drift wraps around.
  for (int i = 0; i < 400; ++i) gen.Next();
  EXPECT_LE(gen.hot_center(), 1.0);
}

TEST(QueryGeneratorTest, PointPatternEmitsEqualityOnExistingValues) {
  std::vector<int64_t> data = TestData(DataOrder::kZipf);
  QueryGenOptions options;
  options.pattern = QueryPattern::kPoint;
  QueryGenerator<int64_t> gen("x", data, options);
  for (int i = 0; i < 20; ++i) {
    Predicate pred = gen.Next();
    EXPECT_EQ(pred.op, CompareOp::kEqual);
    // The probed value is a sampled data value, so it exists.
    EXPECT_GT(MeasuredSelectivity(data, pred), 0.0);
  }
}

TEST(QueryGeneratorTest, QuantileValueIsMonotone) {
  std::vector<int64_t> data = TestData(DataOrder::kUniform);
  QueryGenerator<int64_t> gen("x", data, {});
  int64_t prev = gen.QuantileValue(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    int64_t v = gen.QuantileValue(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_GT(gen.QuantileValue(1.0), gen.QuantileValue(0.0));
}

TEST(QueryPatternTest, Names) {
  EXPECT_EQ(QueryPatternToString(QueryPattern::kUniform), "uniform");
  EXPECT_EQ(QueryPatternToString(QueryPattern::kSkewed), "skewed");
  EXPECT_EQ(QueryPatternToString(QueryPattern::kDrifting), "drifting");
  EXPECT_EQ(QueryPatternToString(QueryPattern::kPoint), "point");
}

}  // namespace
}  // namespace adaskip
