#include "adaskip/workload/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace adaskip {
namespace {

TEST(ZipfTest, SamplesStayInRange) {
  ZipfGenerator zipf(100, 0.8);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = zipf.Next(&rng);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
  }
}

TEST(ZipfTest, RankZeroIsMostFrequent) {
  ZipfGenerator zipf(1000, 0.9);
  Rng rng(2);
  std::vector<int64_t> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[static_cast<size_t>(zipf.Next(&rng))];
  for (size_t r = 1; r < 20; ++r) {
    EXPECT_GE(counts[0], counts[r]) << r;
  }
  // Head dominance: rank 0 far outweighs mid-pack ranks.
  EXPECT_GT(counts[0], counts[500] * 10);
}

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  Rng rng_low(3);
  Rng rng_high(3);
  ZipfGenerator low(1000, 0.5);
  ZipfGenerator high(1000, 0.95);
  int64_t low_head = 0;
  int64_t high_head = 0;
  for (int i = 0; i < 50000; ++i) {
    if (low.Next(&rng_low) == 0) ++low_head;
    if (high.Next(&rng_high) == 0) ++high_head;
  }
  EXPECT_GT(high_head, low_head);
}

TEST(ZipfTest, SingleItemAlwaysZero) {
  ZipfGenerator zipf(1, 0.5);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(&rng), 0);
}

TEST(ZipfTest, AccessorsReflectConstruction) {
  ZipfGenerator zipf(42, 0.7);
  EXPECT_EQ(zipf.n(), 42);
  EXPECT_DOUBLE_EQ(zipf.theta(), 0.7);
}

TEST(ZipfDeathTest, RejectsBadParameters) {
  EXPECT_DEATH({ ZipfGenerator zipf(0, 0.5); }, "");
  EXPECT_DEATH({ ZipfGenerator zipf(10, 1.5); }, "theta");
}

}  // namespace
}  // namespace adaskip
