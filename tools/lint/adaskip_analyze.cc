// adaskip_analyze — repo-specific static analysis. Usage:
//
//   adaskip_analyze [--json=findings.json] [--dot=layering.dot]
//                   <dir-or-file>...
//
// Recursively scans .h/.cc/.cpp files under each argument, prints
// findings as `file:line: [rule] message`, and exits non-zero if any
// rule fired. `--json=` additionally writes the findings as a JSON
// array for CI annotation; `--dot=` writes the observed subsystem
// include graph (violations highlighted) as Graphviz DOT. See
// analyzer.h for the rule catalog and suppression syntax. Wired up as
// the `adaskip_analyze_repo` ctest and as a CI step.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"

namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

// Skips generated/VCS trees when an argument directory contains them.
bool SkippedDir(const fs::path& path) {
  const std::string name = path.filename().string();
  return name == "build" || name == ".git" || (!name.empty() && name[0] == '.');
}

void Collect(const fs::path& root, std::vector<fs::path>* files) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    if (HasSourceExtension(root)) files->push_back(root);
    return;
  }
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "adaskip_analyze: cannot read %s\n", root.c_str());
    return;
  }
  fs::recursive_directory_iterator it(root, ec), end;
  while (it != end) {
    if (it->is_directory() && SkippedDir(it->path())) {
      it.disable_recursion_pending();
    } else if (it->is_regular_file() && HasSourceExtension(it->path())) {
      files->push_back(it->path());
    }
    it.increment(ec);
    if (ec) break;
  }
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "adaskip_analyze: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string dot_path;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--dot=", 0) == 0) {
      dot_path = arg.substr(6);
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: adaskip_analyze [--json=out.json] [--dot=out.dot] "
                 "<dir-or-file>...\n");
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& root : roots) Collect(root, &files);
  std::sort(files.begin(), files.end());

  adaskip_analyze::Analyzer analyzer;
  for (const fs::path& file : files) {
    analyzer.AddFile(file.generic_string(), ReadFile(file));
  }

  const std::vector<adaskip_analyze::Finding> findings = analyzer.Run();
  for (const adaskip_analyze::Finding& f : findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }

  bool io_ok = true;
  if (!json_path.empty()) {
    io_ok &= WriteFileOrDie(json_path,
                            adaskip_analyze::FindingsToJson(findings));
  }
  if (!dot_path.empty()) {
    io_ok &= WriteFileOrDie(dot_path, analyzer.LayeringDot());
  }
  if (!io_ok) return 2;

  if (!findings.empty()) {
    std::fprintf(stderr, "adaskip_analyze: %zu finding(s) in %zu file(s)\n",
                 findings.size(), analyzer.NumFiles());
    return 1;
  }
  std::printf("adaskip_analyze: %zu file(s) clean\n", analyzer.NumFiles());
  return 0;
}
