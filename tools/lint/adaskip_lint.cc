// adaskip_lint — repo-specific invariant checker. Usage:
//
//   adaskip_lint <dir-or-file>...
//
// Recursively scans .h/.cc/.cpp files under each argument, prints
// findings as `file:line: [rule] message`, and exits non-zero if any
// rule fired. See lint_rules.h for the rule catalog. Wired up as the
// `adaskip_lint_repo` ctest and as a CI lint step.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_rules.h"

namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

// Skips generated/VCS trees when an argument directory contains them.
bool SkippedDir(const fs::path& path) {
  const std::string name = path.filename().string();
  return name == "build" || name == ".git" || (!name.empty() && name[0] == '.');
}

void Collect(const fs::path& root, std::vector<fs::path>* files) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    if (HasSourceExtension(root)) files->push_back(root);
    return;
  }
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "adaskip_lint: cannot read %s\n", root.c_str());
    return;
  }
  fs::recursive_directory_iterator it(root, ec), end;
  while (it != end) {
    if (it->is_directory() && SkippedDir(it->path())) {
      it.disable_recursion_pending();
    } else if (it->is_regular_file() && HasSourceExtension(it->path())) {
      files->push_back(it->path());
    }
    it.increment(ec);
    if (ec) break;
  }
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: adaskip_lint <dir-or-file>...\n");
    return 2;
  }

  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    Collect(fs::path(argv[i]), &files);
  }
  std::sort(files.begin(), files.end());

  adaskip_lint::Linter linter;
  for (const fs::path& file : files) {
    linter.LintFile(file.generic_string(), ReadFile(file));
  }

  const std::vector<adaskip_lint::LintIssue> issues = linter.Finish();
  for (const adaskip_lint::LintIssue& issue : issues) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", issue.file.c_str(), issue.line,
                 issue.rule.c_str(), issue.message.c_str());
  }
  if (!issues.empty()) {
    std::fprintf(stderr, "adaskip_lint: %zu finding(s) in %zu file(s)\n",
                 issues.size(), files.size());
    return 1;
  }
  std::printf("adaskip_lint: %zu file(s) clean\n", files.size());
  return 0;
}
