// Self-test for adaskip_analyze: every rule family is exercised against
// the testdata fixtures (violating, clean, suppressed) plus inline
// snippets for the suppression mechanics, path scoping, the JSON
// findings encoding, and the layering DOT artifact. The fixture files
// live in ADASKIP_LINT_TESTDATA; each is analyzed under a synthetic
// src/... label so path scoping behaves as it would in the real tree.

#include "analyzer.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace adaskip_analyze {
namespace {

std::string ReadFixture(const std::string& relative) {
  const std::string path = std::string(ADASKIP_LINT_TESTDATA) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> Analyze(const std::string& label,
                             const std::string& content) {
  Analyzer analyzer;
  analyzer.AddFile(label, content);
  return analyzer.Run();
}

std::vector<Finding> AnalyzeFixture(const std::string& relative,
                                    const std::string& label) {
  return Analyze(label, ReadFixture(relative));
}

int CountRule(const std::vector<Finding>& findings, std::string_view rule) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

int CountMessage(const std::vector<Finding>& findings,
                 std::string_view needle) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.message.find(needle) != std::string::npos) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------
// Ported rules against the original fixtures.

TEST(AnalyzeTest, MissingOverridesAllFiveSurfaces) {
  const auto findings = AnalyzeFixture(
      "bad/missing_overrides.cc", "src/adaskip/skipping/missing_overrides.cc");
  // BrokenIndex misses all five surfaces, HalfIndex all but OnAppend.
  EXPECT_EQ(CountRule(findings, "skip-index-overrides"), 9);
  EXPECT_EQ(CountMessage(findings, "does not override OnAppend"), 1);
  EXPECT_EQ(CountMessage(findings, "does not override Describe"), 2);
  EXPECT_EQ(CountMessage(findings, "does not override MemoryUsageBytes"), 2);
  EXPECT_EQ(CountMessage(findings, "does not override SerializeBinary"), 2);
  EXPECT_EQ(CountMessage(findings, "does not override DeserializeBinary"), 2);
  EXPECT_EQ(findings.size(), 9u);
}

TEST(AnalyzeTest, ForbiddenTokens) {
  const auto findings = AnalyzeFixture(
      "bad/forbidden_tokens.cc", "src/adaskip/engine/forbidden_tokens.cc");
  EXPECT_EQ(CountRule(findings, "naked-new"), 2);
  EXPECT_EQ(CountRule(findings, "raw-thread"), 1);
  EXPECT_EQ(CountRule(findings, "raw-sync-primitive"), 1);
  EXPECT_EQ(CountRule(findings, "static-mutable-state"), 1);
  EXPECT_EQ(findings.size(), 5u);
}

TEST(AnalyzeTest, ForbiddenTokensExemptInUtil) {
  const auto findings = AnalyzeFixture("bad/forbidden_tokens.cc",
                                       "src/adaskip/util/forbidden_tokens.cc");
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeTest, AdhocMetricRegistration) {
  const auto findings = AnalyzeFixture("bad/adhoc_metric.cc",
                                       "src/adaskip/engine/adhoc_metric.cc");
  EXPECT_EQ(CountRule(findings, "metric-registration"), 2);
  EXPECT_TRUE(AnalyzeFixture("bad/adhoc_metric.cc",
                             "src/adaskip/obs/adhoc_metric.cc")
                  .empty());
}

TEST(AnalyzeTest, AdhocJournalEmission) {
  const auto findings = AnalyzeFixture("bad/adhoc_journal.cc",
                                       "src/adaskip/adaptive/adhoc_journal.cc");
  EXPECT_EQ(CountRule(findings, "journal-emission"), 2);
  EXPECT_TRUE(AnalyzeFixture("bad/adhoc_journal.cc",
                             "src/adaskip/obs/adhoc_journal.cc")
                  .empty());
}

TEST(AnalyzeTest, MetricNameStyle) {
  const auto findings = AnalyzeFixture("bad/metric_name.cc",
                                       "src/adaskip/engine/metric_name.cc");
  // Unprefixed, uppercase segment, dashed segment, computed name; the
  // conforming declaration adds nothing.
  EXPECT_EQ(CountRule(findings, "metric-name-style"), 4);
  EXPECT_EQ(CountMessage(findings, "not one plain string literal"), 1);
  EXPECT_EQ(CountMessage(findings, "violates the naming scheme"), 3);
  EXPECT_EQ(findings.size(), 4u);
  EXPECT_TRUE(AnalyzeFixture("suppressed/metric_name.cc",
                             "src/adaskip/engine/metric_name.cc")
                  .empty());
  // Library-only: tests and benches declare scratch instruments freely.
  EXPECT_TRUE(AnalyzeFixture("bad/metric_name.cc",
                             "tests/obs/metric_name.cc")
                  .empty());
}

TEST(AnalyzeTest, SerializeBinaryPairMismatch) {
  const auto findings = AnalyzeFixture(
      "bad/serialize_mismatch.cc", "src/adaskip/skipping/serialize_mismatch.cc");
  EXPECT_EQ(CountRule(findings, "serialize-binary-pair"), 2);
  EXPECT_EQ(CountMessage(findings, "SerializeBinary without"), 1);
  EXPECT_EQ(CountMessage(findings, "DeserializeBinary without"), 1);
}

TEST(AnalyzeTest, RawBinaryIo) {
  const auto findings = AnalyzeFixture("bad/raw_binary_io.cc",
                                       "src/adaskip/engine/raw_binary_io.cc");
  EXPECT_EQ(CountRule(findings, "raw-binary-io"), 5);
  EXPECT_TRUE(AnalyzeFixture("bad/raw_binary_io.cc",
                             "src/adaskip/persist/raw_binary_io.cc")
                  .empty());
}

TEST(AnalyzeTest, SimdIntrinsics) {
  const auto findings = AnalyzeFixture("bad/simd_intrinsics.cc",
                                       "src/adaskip/engine/simd_intrinsics.cc");
  // Header, _mm256_loadu_si256, and two __m256i uses; the suppressed
  // movemask/cast line adds none.
  EXPECT_EQ(CountRule(findings, "simd-intrinsics"), 4);
  EXPECT_TRUE(AnalyzeFixture("bad/simd_intrinsics.cc",
                             "src/adaskip/scan/simd/simd_intrinsics.cc")
                  .empty());
}

TEST(AnalyzeTest, ExecStatsDrift) {
  const auto findings = AnalyzeFixture("bad/stats_drift.cc",
                                       "src/adaskip/engine/stats_drift.cc");
  EXPECT_EQ(CountRule(findings, "exec-stats-sync"), 2);
  EXPECT_EQ(CountMessage(findings, "not accumulated"), 1);
  EXPECT_EQ(CountMessage(findings, "not reset"), 1);
  EXPECT_EQ(CountMessage(findings, "probe_nanos_"), 2);
}

TEST(AnalyzeTest, ServerStatsDrift) {
  const auto findings =
      AnalyzeFixture("bad/server_stats_drift.cc",
                     "src/adaskip/engine/server_stats_drift.cc");
  // shed_ drifted out of Record, Clear, and the metric-export site.
  EXPECT_EQ(CountRule(findings, "exec-stats-sync"), 3);
  EXPECT_EQ(CountMessage(findings, "ServerStats"), 3);
  EXPECT_EQ(CountMessage(findings, "shed_"), 3);
  EXPECT_EQ(CountMessage(findings, "not exported in RecordServerMetrics"), 1);
}

TEST(AnalyzeTest, ServerStatsWithoutMetricExportSite) {
  // A ServerStats whose Record/Clear are complete but which never
  // reaches RecordServerMetrics: the exposition mapping is a required
  // third surface, so its absence is itself a finding.
  const auto findings = Analyze(
      "src/adaskip/engine/server_stats.cc",
      "class ServerStats {\n"
      " public:\n"
      "  void Record(long v);\n"
      "  void Clear();\n"
      " private:\n"
      "  long submitted_ = 0;\n"
      "};\n"
      "void ServerStats::Record(long v) { submitted_ += v; }\n"
      "void ServerStats::Clear() { submitted_ = 0; }\n");
  EXPECT_EQ(CountRule(findings, "exec-stats-sync"), 1);
  EXPECT_EQ(CountMessage(findings, "has no RecordServerMetrics"), 1);
}

TEST(AnalyzeTest, CleanFixtureStaysClean) {
  EXPECT_TRUE(
      AnalyzeFixture("good/clean.cc", "src/adaskip/engine/clean.cc").empty());
}

// ---------------------------------------------------------------------
// Suppression mechanics.

TEST(AnalyzeTest, TrailingSuppressionSilencesOwnLine) {
  const auto findings = Analyze(
      "src/adaskip/engine/x.cc",
      "void F() { auto* p = new int; }  // adaskip-analyze: allow(naked-new)\n");
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeTest, LegacySpellingStillHonoured) {
  const auto findings = Analyze(
      "src/adaskip/engine/x.cc",
      "void F() { auto* p = new int; }  // adaskip-lint: allow(naked-new)\n");
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeTest, StandaloneSuppressionSilencesNextLine) {
  const auto findings =
      Analyze("src/adaskip/engine/x.cc",
              "// adaskip-analyze: allow(naked-new)\n"
              "void F() { auto* p = new int; }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeTest, StandaloneBlockCommentTargetsLineAfterClose) {
  const auto findings =
      Analyze("src/adaskip/engine/x.cc",
              "/* justification spanning\n"
              "   lines: adaskip-analyze: allow(naked-new) */\n"
              "void F() { auto* p = new int; }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeTest, SuppressionIsRuleSpecific) {
  const auto findings = Analyze(
      "src/adaskip/engine/x.cc",
      "void F() { auto* p = new int; }  // adaskip-analyze: allow(raw-thread)\n");
  EXPECT_EQ(CountRule(findings, "naked-new"), 1);
}

TEST(AnalyzeTest, SuppressionOnWrongLineDoesNotLeak) {
  const auto findings =
      Analyze("src/adaskip/engine/x.cc",
              "// adaskip-analyze: allow(naked-new)\n"
              "int unrelated;\n"
              "void F() { auto* p = new int; }\n");
  EXPECT_EQ(CountRule(findings, "naked-new"), 1);
}

// ---------------------------------------------------------------------
// Determinism family.

TEST(AnalyzeTest, DetUnorderedContainer) {
  const auto findings = AnalyzeFixture("bad/det_unordered.cc",
                                       "src/adaskip/engine/det_unordered.cc");
  // Two includes + two member declarations.
  EXPECT_EQ(CountRule(findings, "det-unordered-container"), 4);
  EXPECT_EQ(findings.size(), 4u);
  EXPECT_TRUE(AnalyzeFixture("suppressed/det_unordered.cc",
                             "src/adaskip/engine/det_unordered.cc")
                  .empty());
  // Library-only: tests may use hash maps freely.
  EXPECT_TRUE(AnalyzeFixture("bad/det_unordered.cc",
                             "tests/engine/det_unordered.cc")
                  .empty());
}

TEST(AnalyzeTest, DetWallClock) {
  const auto findings = AnalyzeFixture("bad/det_wall_clock.cc",
                                       "src/adaskip/engine/det_wall_clock.cc");
  // steady_clock, system_clock, std::time — the member named time() is
  // not a wall-clock read.
  EXPECT_EQ(CountRule(findings, "det-wall-clock"), 3);
  EXPECT_EQ(findings.size(), 3u);
  EXPECT_TRUE(AnalyzeFixture("suppressed/det_wall_clock.cc",
                             "src/adaskip/engine/det_wall_clock.cc")
                  .empty());
  // util/ and obs/ are the blessed clock seams.
  EXPECT_TRUE(AnalyzeFixture("bad/det_wall_clock.cc",
                             "src/adaskip/util/det_wall_clock.cc")
                  .empty());
  EXPECT_TRUE(AnalyzeFixture("bad/det_wall_clock.cc",
                             "src/adaskip/obs/det_wall_clock.cc")
                  .empty());
}

TEST(AnalyzeTest, DetRng) {
  const auto findings =
      AnalyzeFixture("bad/det_rng.cc", "src/adaskip/engine/det_rng.cc");
  // random_device, mt19937, std::rand.
  EXPECT_EQ(CountRule(findings, "det-rng"), 3);
  EXPECT_EQ(findings.size(), 3u);
  EXPECT_TRUE(AnalyzeFixture("suppressed/det_rng.cc",
                             "src/adaskip/engine/det_rng.cc")
                  .empty());
  // workload/ is the seeded-RNG seam.
  EXPECT_TRUE(AnalyzeFixture("bad/det_rng.cc",
                             "src/adaskip/workload/det_rng.cc")
                  .empty());
}

TEST(AnalyzeTest, DetPointerOrder) {
  const auto findings = AnalyzeFixture(
      "bad/det_pointer_order.cc", "src/adaskip/engine/det_pointer_order.cc");
  EXPECT_EQ(CountRule(findings, "det-pointer-order"), 3);
  EXPECT_EQ(findings.size(), 3u);
  EXPECT_TRUE(AnalyzeFixture("suppressed/det_pointer_order.cc",
                             "src/adaskip/engine/det_pointer_order.cc")
                  .empty());
}

TEST(AnalyzeTest, DetCleanFixtureStaysClean) {
  EXPECT_TRUE(AnalyzeFixture("good/det_clean.cc",
                             "src/adaskip/engine/det_clean.cc")
                  .empty());
}

// ---------------------------------------------------------------------
// status-must-use.

TEST(AnalyzeTest, StatusMustUseCatchesBothEscapes) {
  const auto findings = AnalyzeFixture("bad/status_drop.cc",
                                       "src/adaskip/engine/status_drop.cc");
  EXPECT_EQ(CountRule(findings, "status-must-use"), 4);
  EXPECT_EQ(CountMessage(findings, "'(void)' discards"), 2);
  EXPECT_EQ(CountMessage(findings, "comma operator discards"), 2);
  EXPECT_EQ(findings.size(), 4u);
}

TEST(AnalyzeTest, StatusMustUseSuppressedAndClean) {
  EXPECT_TRUE(AnalyzeFixture("suppressed/status_drop.cc",
                             "src/adaskip/engine/status_drop.cc")
                  .empty());
  EXPECT_TRUE(AnalyzeFixture("good/status_ok.cc",
                             "src/adaskip/engine/status_ok.cc")
                  .empty());
}

TEST(AnalyzeTest, StatusMustUseHarvestsAcrossFiles) {
  Analyzer analyzer;
  analyzer.AddFile("src/adaskip/persist/writer.h",
                   "class Status;\nStatus FlushFramed();\n");
  analyzer.AddFile("src/adaskip/engine/caller.cc",
                   "void F() { (void)FlushFramed(); }\n");
  const auto findings = analyzer.Run();
  EXPECT_EQ(CountRule(findings, "status-must-use"), 1);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].file, "src/adaskip/engine/caller.cc");
}

// ---------------------------------------------------------------------
// index-kind-exhaustive.

TEST(AnalyzeTest, IndexKindExhaustive) {
  const auto findings = AnalyzeFixture(
      "bad/kind_exhaustive.cc", "src/adaskip/adaptive/kind_exhaustive.cc");
  EXPECT_EQ(CountRule(findings, "index-kind-exhaustive"), 2);
  EXPECT_EQ(CountMessage(findings, "kZoneMap is not handled"), 1);
  EXPECT_EQ(CountMessage(findings, "ValidateIndexOptions"), 1);
  EXPECT_TRUE(AnalyzeFixture("good/kind_exhaustive.cc",
                             "src/adaskip/adaptive/kind_exhaustive.cc")
                  .empty());
  EXPECT_TRUE(AnalyzeFixture("suppressed/kind_exhaustive.cc",
                             "src/adaskip/adaptive/kind_exhaustive.cc")
                  .empty());
}

// ---------------------------------------------------------------------
// layering-dag.

TEST(AnalyzeTest, LayeringBackEdgeAndUnknownSubsystem) {
  const auto findings =
      AnalyzeFixture("bad/layering.cc", "src/adaskip/util/layering.cc");
  EXPECT_EQ(CountRule(findings, "layering-dag"), 2);
  EXPECT_EQ(CountMessage(findings, "'util' may not depend on 'engine'"), 1);
  EXPECT_EQ(CountMessage(findings, "unknown subsystem"), 1);
  EXPECT_TRUE(AnalyzeFixture("suppressed/layering.cc",
                             "src/adaskip/util/layering.cc")
                  .empty());
  EXPECT_TRUE(AnalyzeFixture("good/layering_ok.cc",
                             "src/adaskip/engine/layering_ok.cc")
                  .empty());
}

TEST(AnalyzeTest, LayeringDownEdgesAreFine) {
  const auto findings = Analyze("src/adaskip/engine/scan_executor.cc",
                                "#include \"adaskip/storage/column.h\"\n"
                                "#include \"adaskip/util/status.h\"\n");
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeTest, LayeringDotArtifact) {
  Analyzer analyzer;
  analyzer.AddFile("src/adaskip/util/bad.cc",
                   "#include \"adaskip/engine/session.h\"\n");
  analyzer.AddFile("src/adaskip/engine/good.cc",
                   "#include \"adaskip/util/status.h\"\n");
  const auto findings = analyzer.Run();
  EXPECT_EQ(CountRule(findings, "layering-dag"), 1);
  const std::string dot = analyzer.LayeringDot();
  EXPECT_NE(dot.find("digraph adaskip_layering"), std::string::npos);
  EXPECT_NE(dot.find("\"util\" -> \"engine\""), std::string::npos);
  EXPECT_NE(dot.find("VIOLATION"), std::string::npos);
  EXPECT_NE(dot.find("\"engine\" -> \"util\";"), std::string::npos);
}

// ---------------------------------------------------------------------
// JSON findings output.

TEST(AnalyzeTest, FindingsToJsonShape) {
  const auto findings =
      Analyze("src/adaskip/engine/x.cc", "void F() { auto* p = new int; }\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string json = FindingsToJson(findings);
  EXPECT_NE(json.find("\"file\": \"src/adaskip/engine/x.cc\""),
            std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"naked-new\""), std::string::npos);
  EXPECT_NE(json.find("\"message\": "), std::string::npos);

  // Quotes and backslashes in messages must be escaped.
  const std::vector<Finding> tricky = {
      {"a.cc", 3, "r", "say \"hi\" \\ bye"}};
  const std::string escaped = FindingsToJson(tricky);
  EXPECT_NE(escaped.find("say \\\"hi\\\" \\\\ bye"), std::string::npos);
}

TEST(AnalyzeTest, FindingsAreSortedByFileLineRule) {
  Analyzer analyzer;
  analyzer.AddFile("src/adaskip/engine/b.cc",
                   "void F() { auto* p = new int; }\n");
  analyzer.AddFile("src/adaskip/engine/a.cc",
                   "void G() { delete nullptr; }\n"
                   "void H() { auto* q = new int; }\n");
  const auto findings = analyzer.Run();
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].file, "src/adaskip/engine/a.cc");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].file, "src/adaskip/engine/a.cc");
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_EQ(findings[2].file, "src/adaskip/engine/b.cc");
}

// ---------------------------------------------------------------------
// Path scoping edges.

TEST(AnalyzeTest, ToolsAreNeverScanned) {
  Analyzer analyzer;
  analyzer.AddFile("tools/lint/testgen.cc",
                   "void F() { auto* p = new int; }\n");
  EXPECT_TRUE(analyzer.Run().empty());
  EXPECT_EQ(analyzer.NumFiles(), 0u);
}

TEST(AnalyzeTest, BenchAndTestsGetStyleRulesButNotDetRules) {
  // Style rules apply outside src/ (same as the old linter)...
  const auto style = Analyze("tests/engine/foo_test.cc",
                             "void F() { auto* p = new int; }\n");
  EXPECT_EQ(CountRule(style, "naked-new"), 1);
  // ...but determinism rules are library-only.
  const auto det = Analyze("bench/bench_foo.cc",
                           "#include <random>\n"
                           "void F() { std::mt19937 gen(42); }\n");
  EXPECT_TRUE(det.empty());
}

}  // namespace
}  // namespace adaskip_analyze
