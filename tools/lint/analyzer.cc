#include "analyzer.h"

#include <algorithm>
#include <cctype>

#include "rules.h"

namespace adaskip_analyze {

namespace {

const Token& SentinelToken() {
  static const Token kSentinel{};
  return kSentinel;
}

/// Hand-rolled suppression parser (no <regex>: GCC's implementation
/// trips -Wmaybe-uninitialized in sanitized -Werror builds, and a
/// linear scan is faster anyway). Recognises both the current
/// `adaskip-analyze: allow(<rule>)` spelling and the legacy
/// `adaskip-lint: allow(<rule>)` one.
void HarvestSuppressions(const std::string& comment, int target_line,
                         std::vector<std::pair<int, std::string>>* out) {
  static constexpr std::string_view kMarkers[] = {"adaskip-analyze:",
                                                  "adaskip-lint:"};
  for (std::string_view marker : kMarkers) {
    size_t pos = 0;
    while ((pos = comment.find(marker, pos)) != std::string::npos) {
      size_t p = pos + marker.size();
      while (p < comment.size() &&
             std::isspace(static_cast<unsigned char>(comment[p])) != 0) {
        ++p;
      }
      static constexpr std::string_view kAllow = "allow(";
      if (comment.compare(p, kAllow.size(), kAllow) == 0) {
        p += kAllow.size();
        const size_t close = comment.find(')', p);
        if (close != std::string::npos && close > p) {
          const std::string rule = comment.substr(p, close - p);
          const bool well_formed =
              std::all_of(rule.begin(), rule.end(), [](char c) {
                return std::islower(static_cast<unsigned char>(c)) != 0 ||
                       std::isdigit(static_cast<unsigned char>(c)) != 0 ||
                       c == '-';
              });
          if (well_formed) out->emplace_back(target_line, rule);
        }
      }
      pos += marker.size();
    }
  }
}

}  // namespace

bool PathContains(std::string_view path, std::string_view needle) {
  return path.find(needle) != std::string_view::npos;
}

bool SourceFile::Suppressed(int line, std::string_view rule) const {
  for (const auto& [sline, srule] : suppressions) {
    if (sline == line && srule == rule) return true;
  }
  return false;
}

const Token& SourceFile::Code(int i) const {
  if (i < 0 || i >= NumCode()) return SentinelToken();
  return tokens[static_cast<size_t>(code[static_cast<size_t>(i)])];
}

bool SourceFile::CodeIs(int i, std::string_view text) const {
  return Code(i).text == text;
}

bool SourceFile::CodeIs(int i, TokKind kind, std::string_view text) const {
  const Token& t = Code(i);
  return t.kind == kind && t.text == text;
}

int SourceFile::MatchBrace(int open) const {
  int depth = 0;
  for (int i = open; i < NumCode(); ++i) {
    const Token& t = Code(i);
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "{") ++depth;
    if (t.text == "}" && --depth == 0) return i;
  }
  return -1;
}

int MatchParen(const SourceFile& file, int open) {
  int depth = 0;
  for (int i = open; i < file.NumCode(); ++i) {
    const Token& t = file.Code(i);
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(") ++depth;
    if (t.text == ")" && --depth == 0) return i;
  }
  return -1;
}

bool IdentThenParen(const SourceFile& file, int i) {
  return file.Code(i).kind == TokKind::kIdent &&
         file.CodeIs(i + 1, TokKind::kPunct, "(");
}

void ForEachWordInText(const std::string& text,
                       const std::function<void(std::string_view)>& fn) {
  size_t i = 0;
  const auto is_word = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  while (i < text.size()) {
    if (!is_word(text[i])) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < text.size() && is_word(text[j])) ++j;
    fn(std::string_view(text).substr(i, j - i));
    i = j;
  }
}

std::string IncludeOperand(const std::string& text) {
  size_t p = 0;
  const auto skip_ws = [&] {
    while (p < text.size() &&
           std::isspace(static_cast<unsigned char>(text[p])) != 0) {
      ++p;
    }
  };
  skip_ws();
  if (p >= text.size() || text[p] != '#') return "";
  ++p;
  skip_ws();
  static constexpr std::string_view kInclude = "include";
  if (text.compare(p, kInclude.size(), kInclude) != 0) return "";
  p += kInclude.size();
  skip_ws();
  if (p >= text.size()) return "";
  char close = '\0';
  if (text[p] == '"') close = '"';
  if (text[p] == '<') close = '>';
  if (close == '\0') return "";
  const size_t begin = p + 1;
  const size_t end = text.find(close, begin);
  if (end == std::string::npos) return "";
  return text.substr(begin, end - begin);
}

void Reporter::Report(const SourceFile& file, int line, std::string_view rule,
                      std::string message) {
  if (file.Suppressed(line, rule)) return;
  out_->push_back({file.path, line, std::string(rule), std::move(message)});
}

void Reporter::ReportAt(const std::string& path, int line,
                        std::string_view rule, std::string message) {
  const auto it = files_->find(path);
  if (it != files_->end() && it->second->Suppressed(line, rule)) return;
  out_->push_back({path, line, std::string(rule), std::move(message)});
}

Analyzer::Analyzer() {
  AddStyleRules(&rules_);
  AddContractRules(&rules_);
  AddDeterminismRules(&rules_);
  auto layering = std::make_unique<LayeringDagRule>();
  layering_ = layering.get();
  rules_.push_back(std::move(layering));
}

Analyzer::~Analyzer() = default;

void Analyzer::AddFile(const std::string& path, const std::string& content) {
  if (PathContains(path, "tools/")) return;  // Polices, not itself.
  auto file = std::make_unique<SourceFile>();
  file->path = path;
  file->tokens = Tokenize(content);
  const Token* prev_any = nullptr;
  for (size_t i = 0; i < file->tokens.size(); ++i) {
    const Token& t = file->tokens[i];
    if (t.kind == TokKind::kLineComment || t.kind == TokKind::kBlockComment) {
      // A comment with nothing but whitespace before it on its line
      // targets the line after its END (matters for block comments); a
      // trailing comment targets its own first line.
      const bool standalone =
          prev_any == nullptr || prev_any->end_line < t.line;
      HarvestSuppressions(t.text, standalone ? t.end_line + 1 : t.line,
                          &file->suppressions);
    } else if (t.kind != TokKind::kPreproc) {
      file->code.push_back(static_cast<int>(i));
    }
    prev_any = &t;
  }
  by_path_[file->path] = file.get();
  files_.push_back(std::move(file));
}

std::vector<Finding> Analyzer::Run() {
  std::vector<Finding> findings;
  Reporter reporter(&by_path_, &findings);
  for (const auto& rule : rules_) {
    for (const auto& file : files_) rule->Collect(*file);
  }
  for (const auto& rule : rules_) {
    for (const auto& file : files_) rule->Check(*file, reporter);
  }
  for (const auto& rule : rules_) rule->Finish(reporter);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return findings;
}

std::string Analyzer::LayeringDot() const {
  // Declared order as ranked nodes; observed edges solid, violations
  // red and bold so the artifact highlights the back-edge.
  std::string dot = "digraph adaskip_layering {\n  rankdir=BT;\n";
  for (const std::string& sub : LayeringDagRule::DeclaredOrder()) {
    dot += "  \"" + sub + "\";\n";
  }
  if (layering_ != nullptr) {
    for (const auto& edge : layering_->edges()) {
      dot += "  \"" + edge.from + "\" -> \"" + edge.to + "\"";
      if (edge.violation) {
        dot += " [color=red, penwidth=2, label=\"VIOLATION\"]";
      }
      dot += ";\n";
    }
  }
  dot += "}\n";
  return dot;
}

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          *out += "\\u00";
          out->push_back(kHex[(c >> 4) & 0xF]);
          out->push_back(kHex[c & 0xF]);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::string out = "[\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "  {\"file\": ";
    AppendJsonString(f.file, &out);
    out += ", \"line\": " + std::to_string(f.line) + ", \"rule\": ";
    AppendJsonString(f.rule, &out);
    out += ", \"message\": ";
    AppendJsonString(f.message, &out);
    out += i + 1 < findings.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

}  // namespace adaskip_analyze
