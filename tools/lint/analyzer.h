#ifndef ADASKIP_TOOLS_LINT_ANALYZER_H_
#define ADASKIP_TOOLS_LINT_ANALYZER_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cpp_tokenizer.h"

/// adaskip_analyze: repo-specific static analysis that neither the
/// compiler nor clang-tidy knows about. Token-level (cpp_tokenizer.h),
/// no libclang — it builds everywhere the project builds and runs in
/// milliseconds as a ctest and a CI step.
///
/// Rule catalog (ids used in findings and suppression comments):
///
/// Contract rules
///   skip-index-overrides  Every `class X : public SkipIndex` overrides
///                         all five contract surfaces: OnAppend,
///                         Describe, MemoryUsageBytes, SerializeBinary,
///                         DeserializeBinary. A missing surface breaks
///                         live-append, introspection, accounting, or —
///                         worst — crash restore.
///   exec-stats-sync       Every WorkloadStats/ServerStats field appears
///                         in Record(), and Clear() either resets the
///                         whole object or names every field. ServerStats
///                         adds a third synchronized surface: each
///                         field's base-name must appear in the
///                         RecordServerMetrics registration site, so
///                         every server stat is exported as a registry
///                         metric the /metrics exposition can render.
///   serialize-binary-pair Any class declaring SerializeBinary also
///                         declares DeserializeBinary, and vice versa.
///   index-kind-exhaustive Every enumerator of `enum class IndexKind`
///                         appears in every kind-dispatch site
///                         (IndexKindToString, each MakeSkipIndex
///                         definition, ValidateIndexOptions) — adding an
///                         eighth structure with a missing surface fails
///                         CI, not a restore in production.
///   status-must-use       No silent drops of [[nodiscard]] Status /
///                         Result returns via the `(void)`-cast or
///                         comma-operator escapes the compiler cannot
///                         flag consistently across GCC/Clang.
///
/// Style/ownership rules (ported from adaskip_lint)
///   naked-new, raw-thread, raw-sync-primitive, static-mutable-state,
///   metric-registration, journal-emission, raw-binary-io,
///   simd-intrinsics — semantics unchanged; see the rule implementations
///   for the rationale strings.
///   metric-name-style     The name handed to an ADASKIP_METRIC_* macro
///                         in library code is one plain string literal
///                         of the form adaskip.<seg>.<seg>... with
///                         lowercase snake_case segments — the
///                         Prometheus exposition derives family names
///                         from these literals, so the scheme is
///                         operator API.
///
/// Determinism rules (the scalar/SIMD/serial/parallel/replay/restore
/// bit-identity contract, enforced statically)
///   det-unordered-container  No std::unordered_{map,set,multimap,
///                         multiset} in library code: iteration order
///                         leaks into RenderText/journal/results.
///   det-wall-clock        No clock reads outside util/ + obs/: time
///                         flows through util::MonotonicNanos and the
///                         obs timestamp seams so replay stays
///                         deterministic.
///   det-rng               No rand()/std::random_device/engine
///                         construction outside workload/ (the seeded
///                         RNG seam) and util/.
///   det-pointer-order     No ordered containers or comparators keyed on
///                         raw pointer values — allocation order is not
///                         deterministic across runs.
///
/// Architecture rule
///   layering-dag          `#include "adaskip/..."` edges must follow
///                         the declared subsystem DAG (util → persist →
///                         obs → storage → scan → skipping → adaptive →
///                         engine → workload); back-edges and unknown
///                         subsystems are findings. The accumulated
///                         graph is exported as DOT (--dot=).
///
/// Suppressions: a trailing comment `adaskip-analyze: allow(<rule-id>)`
/// silences that rule on its own line; a standalone comment (nothing but
/// whitespace before it) silences the line directly below it. The
/// legacy `adaskip-lint: allow(...)` spelling is honoured identically.
///
/// Path scoping: files whose path contains "util/" are exempt from
/// naked-new / raw-thread / raw-sync-primitive / static-mutable-state
/// (util/ is where the blessed wrappers live); "obs/" is exempt from
/// metric-registration and journal-emission; "scan/simd/" from
/// simd-intrinsics; "persist/" from raw-binary-io; metric-name-style
/// applies to library code only (paths containing "src/", so tests and
/// benches may declare scratch instruments). The det-* rules,
/// status-must-use, index-kind-exhaustive, and layering-dag apply to
/// library code only (paths containing "src/"), with det-wall-clock
/// additionally exempting util/ + obs/ and det-rng exempting util/ +
/// workload/. Files under "tools/" are never scanned.
namespace adaskip_analyze {

struct Finding {
  std::string file;
  int line = 0;  // 1-based.
  std::string rule;
  std::string message;
};

/// One tokenized input file plus the per-file indexes rules work from.
struct SourceFile {
  std::string path;
  std::vector<Token> tokens;  // Every token, comments/preproc included.
  std::vector<int> code;      // Indices of code tokens (no comments, no
                              // preprocessor directives), in order.
  // Suppression targets harvested from comments: (line, rule-id).
  std::vector<std::pair<int, std::string>> suppressions;

  bool Suppressed(int line, std::string_view rule) const;

  /// Code-token accessors: i indexes `code`. Out-of-range returns a
  /// sentinel empty punct token so matchers can look ahead freely.
  const Token& Code(int i) const;
  int NumCode() const { return static_cast<int>(code.size()); }
  bool CodeIs(int i, std::string_view text) const;
  bool CodeIs(int i, TokKind kind, std::string_view text) const;
  /// Code-token index of the '}' matching the '{' at `open` (-1 if
  /// unbalanced).
  int MatchBrace(int open) const;
};

/// Collects findings, applying the reported-against file's suppression
/// comments. Cross-file rules report through ReportAt with the path of
/// the file the finding belongs to.
class Reporter {
 public:
  Reporter(const std::map<std::string, const SourceFile*>* files,
           std::vector<Finding>* out)
      : files_(files), out_(out) {}

  void Report(const SourceFile& file, int line, std::string_view rule,
              std::string message);
  void ReportAt(const std::string& path, int line, std::string_view rule,
                std::string message);

 private:
  const std::map<std::string, const SourceFile*>* files_;
  std::vector<Finding>* out_;
};

/// A rule sees every file twice: Collect() harvests cross-file state
/// (declarations, enums, the include graph), then Check() reports
/// per-file findings, then Finish() resolves anything that needed the
/// whole tree.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view id() const = 0;
  virtual void Collect(const SourceFile& file) { (void)file; }
  virtual void Check(const SourceFile& file, Reporter& reporter) {
    (void)file;
    (void)reporter;
  }
  virtual void Finish(Reporter& reporter) { (void)reporter; }
};

class Analyzer {
 public:
  Analyzer();  // Installs the full rule catalog.
  ~Analyzer();

  /// Tokenizes and stores one file. `path` labels findings and drives
  /// path scoping. Files under tools/ are ignored (the analyzer
  /// polices, not itself).
  void AddFile(const std::string& path, const std::string& content);

  /// Runs Collect over all files, Check over all files, then Finish,
  /// and returns all findings sorted by (file, line, rule).
  std::vector<Finding> Run();

  /// DOT rendering of the include graph accumulated by layering-dag
  /// during Run() (empty digraph before Run).
  std::string LayeringDot() const;

  size_t NumFiles() const { return files_.size(); }

 private:
  std::vector<std::unique_ptr<SourceFile>> files_;
  std::map<std::string, const SourceFile*> by_path_;
  std::vector<std::unique_ptr<Rule>> rules_;
  class LayeringDagRule* layering_ = nullptr;  // Owned by rules_.
};

/// Renders findings as a JSON array (stable field order, sorted input
/// preserved) for CI annotation.
std::string FindingsToJson(const std::vector<Finding>& findings);

/// True if `path` contains `needle` (path scoping helper).
bool PathContains(std::string_view path, std::string_view needle);

}  // namespace adaskip_analyze

#endif  // ADASKIP_TOOLS_LINT_ANALYZER_H_
