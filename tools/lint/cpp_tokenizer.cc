#include "cpp_tokenizer.h"

#include <cctype>

namespace adaskip_analyze {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// String-literal encoding prefixes; an identifier that spells one of
/// these and is immediately followed by a quote fuses into the literal.
bool IsStringPrefix(std::string_view ident) {
  return ident == "R" || ident == "L" || ident == "u" || ident == "U" ||
         ident == "u8" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

/// Phase 1: delete every backslash-newline pair and remember the source
/// line of every surviving byte, so phase 2 never has to think about
/// continuations (in identifiers, strings, comments, or directives).
struct Spliced {
  std::string text;
  std::vector<int> line;  // text[i] came from source line line[i]
  std::vector<int> col;   // ... at 1-based column col[i]
};

Spliced SpliceLines(std::string_view src) {
  Spliced out;
  out.text.reserve(src.size());
  out.line.reserve(src.size());
  out.col.reserve(src.size());
  int line = 1;
  int col = 1;
  for (size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    if (c == '\\') {
      size_t j = i + 1;
      if (j < src.size() && src[j] == '\r') ++j;
      if (j < src.size() && src[j] == '\n') {
        i = j;  // Swallow the pair; the next byte continues this token.
        ++line;
        col = 1;
        continue;
      }
    }
    out.text.push_back(c);
    out.line.push_back(line);
    out.col.push_back(col);
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  }
  return out;
}

class Lexer {
 public:
  explicit Lexer(const Spliced& s) : s_(s) {}

  std::vector<Token> Run() {
    while (pos_ < s_.text.size()) {
      const char c = s_.text[pos_];
      if (c == '\n') {
        at_line_start_ = true;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexPreproc();
        continue;
      }
      at_line_start_ = false;
      if (IsIdentStart(c)) {
        LexIdentOrPrefixedString();
      } else if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
      } else if (c == '"') {
        LexString(pos_, /*raw=*/false);
      } else if (c == '\'') {
        LexCharLit();
      } else {
        LexPunct();
      }
    }
    return std::move(tokens_);
  }

 private:
  char Peek(size_t ahead) const {
    const size_t p = pos_ + ahead;
    return p < s_.text.size() ? s_.text[p] : '\0';
  }

  void Emit(TokKind kind, size_t begin, size_t end) {
    // Escape handling can step past end-of-input on truncated literals.
    if (end > s_.text.size()) end = s_.text.size();
    Token t;
    t.kind = kind;
    t.text.assign(s_.text, begin, end - begin);
    t.line = s_.line[begin];
    t.col = s_.col[begin];
    t.end_line = s_.line[end - 1];
    tokens_.push_back(std::move(t));
  }

  void LexLineComment() {
    const size_t begin = pos_;
    while (pos_ < s_.text.size() && s_.text[pos_] != '\n') ++pos_;
    Emit(TokKind::kLineComment, begin, pos_);
    // at_line_start_ is untouched: a comment does not make `#` on the
    // same line a mid-line hash, and the '\n' handler resets it anyway.
  }

  void LexBlockComment() {
    const size_t begin = pos_;
    pos_ += 2;
    while (pos_ < s_.text.size() &&
           !(s_.text[pos_] == '*' && Peek(1) == '/')) {
      ++pos_;
    }
    if (pos_ < s_.text.size()) pos_ += 2;
    Emit(TokKind::kBlockComment, begin, pos_);
    const Token& t = tokens_.back();
    // `/* ... \n */ #if` — the hash still opens a directive.
    if (t.end_line > t.line) at_line_start_ = true;
  }

  /// One whole directive. Strings inside are honoured (so a `//` in a
  /// macro body string does not truncate the directive); a real `//` or
  /// `/*` comment ends the directive text and is lexed as its own token
  /// (suppression comments on `#include` lines stay visible as
  /// comments).
  void LexPreproc() {
    const size_t begin = pos_;
    while (pos_ < s_.text.size() && s_.text[pos_] != '\n') {
      const char c = s_.text[pos_];
      if (c == '/' && (Peek(1) == '/' || Peek(1) == '*')) break;
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++pos_;
        while (pos_ < s_.text.size() && s_.text[pos_] != '\n') {
          if (s_.text[pos_] == '\\') {
            pos_ += 2;
            continue;
          }
          if (s_.text[pos_] == quote) {
            ++pos_;
            break;
          }
          ++pos_;
        }
        continue;
      }
      ++pos_;
    }
    Emit(TokKind::kPreproc, begin, pos_);
  }

  void LexIdentOrPrefixedString() {
    const size_t begin = pos_;
    while (pos_ < s_.text.size() && IsIdentChar(s_.text[pos_])) ++pos_;
    const std::string_view ident(s_.text.data() + begin, pos_ - begin);
    if (pos_ < s_.text.size() && s_.text[pos_] == '"' &&
        IsStringPrefix(ident)) {
      LexString(begin, /*raw=*/ident.back() == 'R');
      return;
    }
    Emit(TokKind::kIdent, begin, pos_);
  }

  void LexNumber() {
    const size_t begin = pos_;
    ++pos_;
    while (pos_ < s_.text.size()) {
      const char c = s_.text[pos_];
      if (IsIdentChar(c) || c == '.') {
        ++pos_;
      } else if (c == '\'' && IsIdentChar(Peek(1))) {
        pos_ += 2;  // Digit separator: 1'000'000.
      } else if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = s_.text[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;  // Exponent sign: 1.5e-3.
        } else {
          break;
        }
      } else {
        break;
      }
    }
    Emit(TokKind::kNumber, begin, pos_);
  }

  /// `begin` points at the prefix (if any); pos_ is at the opening '"'.
  void LexString(size_t begin, bool raw) {
    if (raw) {
      // R"delim( ... )delim"
      ++pos_;  // past '"'
      std::string delim;
      while (pos_ < s_.text.size() && s_.text[pos_] != '(') {
        delim.push_back(s_.text[pos_]);
        ++pos_;
      }
      const std::string close = ")" + delim + "\"";
      while (pos_ < s_.text.size() &&
             s_.text.compare(pos_, close.size(), close) != 0) {
        ++pos_;
      }
      if (pos_ < s_.text.size()) pos_ += close.size();
      Emit(TokKind::kRawString, begin, pos_);
      return;
    }
    ++pos_;  // past '"'
    while (pos_ < s_.text.size()) {
      const char c = s_.text[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      ++pos_;
      if (c == '"') break;
    }
    Emit(TokKind::kString, begin, pos_);
  }

  void LexCharLit() {
    const size_t begin = pos_;
    ++pos_;  // past '\''
    while (pos_ < s_.text.size()) {
      const char c = s_.text[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      ++pos_;
      if (c == '\'') break;
    }
    Emit(TokKind::kCharLit, begin, pos_);
  }

  void LexPunct() {
    static constexpr std::string_view kThree[] = {"<<=", ">>=", "->*",
                                                  "...", "<=>"};
    static constexpr std::string_view kTwo[] = {
        "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
        "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*"};
    const size_t begin = pos_;
    size_t len = 1;
    for (std::string_view p : kThree) {
      if (s_.text.compare(pos_, p.size(), p) == 0) {
        len = 3;
        break;
      }
    }
    if (len == 1) {
      for (std::string_view p : kTwo) {
        if (s_.text.compare(pos_, p.size(), p) == 0) {
          len = 2;
          break;
        }
      }
    }
    pos_ += len;
    Emit(TokKind::kPunct, begin, pos_);
  }

  const Spliced& s_;
  size_t pos_ = 0;
  bool at_line_start_ = true;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> Tokenize(std::string_view src) {
  const Spliced spliced = SpliceLines(src);
  if (spliced.text.empty()) return {};
  return Lexer(spliced).Run();
}

}  // namespace adaskip_analyze
