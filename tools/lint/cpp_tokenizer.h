#ifndef ADASKIP_TOOLS_LINT_CPP_TOKENIZER_H_
#define ADASKIP_TOOLS_LINT_CPP_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// A real (if deliberately small) C++ tokenizer for adaskip_analyze.
/// Unlike the comment-/string-stripping scanner it replaces, every
/// construct survives as a structured token: comments keep their text
/// (suppression harvesting reads them), string/char literals keep their
/// spelling (so nothing inside them can ever look like code), and each
/// preprocessor directive arrives as ONE token holding its whole logical
/// line (so `#include` edges and macro-smuggled intrinsics are
/// inspectable without line-reassembly in every rule).
///
/// Faithfulness notes (all irrelevant for static-analysis purposes, all
/// deliberate):
///   - Backslash-newline splicing happens everywhere, including inside
///     raw string literals (the standard exempts them). Rules never look
///     inside string bodies, and splicing first keeps the lexer simple.
///   - Keywords are not distinguished from identifiers; rules match on
///     spelling.
///   - Numbers are lexed as pp-numbers (digit separators, exponent
///     signs, and suffixes included in one token).
///   - `::` and the other multi-char operators are single punct tokens
///     (maximal munch), so `std :: thread` and `std::thread` tokenize
///     identically.
namespace adaskip_analyze {

enum class TokKind : std::uint8_t {
  kIdent,         // identifiers and keywords
  kNumber,        // pp-numbers: 0x1F, 1'000'000, 1.5e-3f
  kString,        // "..." with optional encoding prefix (u8"...", L"...")
  kRawString,     // R"delim(...)delim" with optional encoding prefix
  kCharLit,       // 'x', u'\n'
  kPunct,         // operators and punctuation, maximal munch
  kLineComment,   // // ... (text includes the slashes)
  kBlockComment,  // /* ... */ (text includes the delimiters)
  kPreproc,       // one whole directive logical line, continuations spliced
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;   // Spelling (see kind-specific notes above).
  int line = 1;       // 1-based line of the first character.
  int col = 1;        // 1-based column of the first character.
  int end_line = 1;   // 1-based line of the last character (block
                      // comments, raw strings, and spliced directives
                      // can span lines).
};

/// Tokenizes `src`. Never fails: unterminated constructs produce a final
/// token running to end-of-input (a linter must keep going on files that
/// do not compile yet).
std::vector<Token> Tokenize(std::string_view src);

}  // namespace adaskip_analyze

#endif  // ADASKIP_TOOLS_LINT_CPP_TOKENIZER_H_
