#include "lint_rules.h"

#include <algorithm>
#include <cctype>
#include <regex>

namespace adaskip_lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Records every `adaskip-lint: allow(<rule>)` in `comment` (which
/// started on `line`).
void HarvestSuppressions(
    const std::string& comment, int line,
    std::vector<std::pair<int, std::string>>* suppressions) {
  static const std::regex kAllow(R"(adaskip-lint:\s*allow\(([a-z-]+)\))");
  auto begin = std::sregex_iterator(comment.begin(), comment.end(), kAllow);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    suppressions->emplace_back(line, (*it)[1].str());
  }
}

/// Byte offset of the '{' opening the next brace block at or after
/// `from`, or npos.
size_t FindOpenBrace(const std::string& text, size_t from) {
  return text.find('{', from);
}

/// Given `open` at a '{', returns the offset one past its matching '}'
/// (or npos if unbalanced). `text` must already be comment/string
/// stripped, so every brace is real code.
size_t SkipBraceBlock(const std::string& text, size_t open) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

bool PathContains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

}  // namespace

int LineOf(const std::string& text, size_t offset) {
  return 1 + static_cast<int>(
                 std::count(text.begin(),
                            text.begin() + static_cast<ptrdiff_t>(
                                               std::min(offset, text.size())),
                            '\n'));
}

std::string StripCommentsAndStrings(
    const std::string& content,
    std::vector<std::pair<int, std::string>>* suppressions) {
  std::string out(content.size(), ' ');
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string comment;      // Text of the comment being consumed.
  int comment_line = 0;     // Line the comment started on.
  bool comment_standalone = false;  // Nothing but whitespace before it.
  std::string raw_delim;    // Delimiter of the raw string being consumed.
  int line = 1;
  size_t line_start = 0;    // Offset of the current line's first byte.

  // A standalone comment's suppressions target the NEXT line; a trailing
  // comment's target its own line.
  const auto is_standalone = [&out](size_t line_start_off, size_t at) {
    for (size_t p = line_start_off; p < at; ++p) {
      if (std::isspace(static_cast<unsigned char>(out[p])) == 0) return false;
    }
    return true;
  };

  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      line_start = i + 1;
      out[i] = '\n';  // Keep line structure everywhere.
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment.clear();
          comment_line = line;
          comment_standalone = is_standalone(line_start, i);
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment.clear();
          comment_line = line;
          comment_standalone = is_standalone(line_start, i);
          ++i;
        } else if (c == '"') {
          // R"delim( opens a raw string when R is its own token.
          const bool raw = i >= 1 && content[i - 1] == 'R' &&
                           (i < 2 || !IsIdentChar(content[i - 2]));
          if (raw) {
            out[i - 1] = ' ';  // Blank the R as well.
            raw_delim.clear();
            size_t j = i + 1;
            while (j < content.size() && content[j] != '(') {
              raw_delim += content[j];
              ++j;
            }
            i = j;  // At '(' (or end).
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          // Digit separators (1'000'000) are not char literals.
          if (i >= 1 && IsIdentChar(content[i - 1])) {
            out[i] = ' ';
          } else {
            state = State::kChar;
          }
        } else if (c != '\n') {
          out[i] = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          HarvestSuppressions(
              comment, comment_standalone ? comment_line + 1 : comment_line,
              suppressions);
          state = State::kCode;
        } else {
          comment += c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          // Standalone block comments target the line after their `*/`.
          HarvestSuppressions(
              comment, comment_standalone ? line + 1 : comment_line,
              suppressions);
          state = State::kCode;
          ++i;
        } else {
          comment += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (next == '\n') ++line;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (content.compare(i, close.size(), close) == 0) {
          i += close.size() - 1;
          state = State::kCode;
        }
        break;
      }
    }
  }
  if (state == State::kLineComment) {
    HarvestSuppressions(comment,
                        comment_standalone ? comment_line + 1 : comment_line,
                        suppressions);
  }
  return out;
}

bool Linter::Suppressed(int line, const std::string& rule) const {
  for (const auto& [sline, srule] : suppressions_) {
    if (srule == rule && line == sline) return true;
  }
  return false;
}

void Linter::Report(const std::string& path, int line, const std::string& rule,
                    const std::string& message) {
  if (Suppressed(line, rule)) return;
  issues_.push_back({path, line, rule, message});
}

void Linter::CheckSkipIndexOverrides(const std::string& path,
                                     const std::string& stripped) {
  static const std::regex kSubclass(
      R"(class\s+([A-Za-z_]\w*)[^{};]*:\s*public\s+SkipIndex\b)");
  static const std::regex kOnAppend(R"(OnAppend\s*\([^)]*\)[^;{]*override)");
  static const std::regex kDescribe(R"(Describe\s*\(\s*\)[^;{]*override)");
  auto begin = std::sregex_iterator(stripped.begin(), stripped.end(), kSubclass);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    const size_t decl_off = static_cast<size_t>(it->position());
    const size_t open = FindOpenBrace(stripped, decl_off);
    if (open == std::string::npos) continue;
    const size_t end = SkipBraceBlock(stripped, open);
    if (end == std::string::npos) continue;
    const std::string body = stripped.substr(open, end - open);
    const int line = LineOf(stripped, decl_off);
    if (!std::regex_search(body, kOnAppend)) {
      Report(path, line, "skip-index-overrides",
             "SkipIndex subclass '" + name +
                 "' does not override OnAppend — appends would break the "
                 "superset contract");
    }
    if (!std::regex_search(body, kDescribe)) {
      Report(path, line, "skip-index-overrides",
             "SkipIndex subclass '" + name +
                 "' does not override Describe — introspection surfaces "
                 "would lose it");
    }
  }
}

void Linter::CheckForbiddenTokens(const std::string& path,
                                  const std::string& stripped) {
  if (PathContains(path, "util/")) return;  // Home of the blessed wrappers.

  // naked-new: `new` anywhere; `delete` unless it is `= delete`.
  static const std::regex kNew(R"(\bnew\b)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), kNew);
       it != std::sregex_iterator(); ++it) {
    const size_t off = static_cast<size_t>(it->position());
    Report(path, LineOf(stripped, off), "naked-new",
           "naked 'new' outside util/ — use std::make_unique or a container");
  }
  static const std::regex kDelete(R"(\bdelete\b)");
  for (auto it =
           std::sregex_iterator(stripped.begin(), stripped.end(), kDelete);
       it != std::sregex_iterator(); ++it) {
    const size_t off = static_cast<size_t>(it->position());
    // Walk back over whitespace; `= delete` declares a deleted function.
    size_t p = off;
    while (p > 0 && std::isspace(static_cast<unsigned char>(stripped[p - 1]))) {
      --p;
    }
    if (p > 0 && stripped[p - 1] == '=') continue;
    Report(path, LineOf(stripped, off), "naked-new",
           "naked 'delete' outside util/ — ownership belongs to "
           "std::unique_ptr");
  }

  // raw-thread: std::thread spawning (static-member access is fine).
  static const std::regex kThread(R"(std\s*::\s*thread\b)");
  for (auto it =
           std::sregex_iterator(stripped.begin(), stripped.end(), kThread);
       it != std::sregex_iterator(); ++it) {
    const size_t off = static_cast<size_t>(it->position());
    size_t after = off + static_cast<size_t>(it->length());
    while (after < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[after]))) {
      ++after;
    }
    if (stripped.compare(after, 2, "::") == 0) continue;
    Report(path, LineOf(stripped, off), "raw-thread",
           "std::thread outside util/ — parallel work goes through "
           "ThreadPool");
  }

  // raw-sync-primitive: unannotated synchronization types.
  static const std::regex kSync(
      R"(std\s*::\s*(mutex|recursive_mutex|shared_mutex|timed_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|scoped_lock|shared_lock)\b)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), kSync);
       it != std::sregex_iterator(); ++it) {
    const size_t off = static_cast<size_t>(it->position());
    Report(path, LineOf(stripped, off), "raw-sync-primitive",
           "raw std::" + (*it)[1].str() +
               " outside util/ — use the annotated Mutex/MutexLock/CondVar "
               "(thread_annotations.h) so Clang Thread Safety Analysis sees "
               "the lock");
  }

  // static-mutable-state: static variables that are not const/atomic.
  static const std::regex kStaticLine(R"(^[ \t]*static\s[^;\n]*;)");
  size_t pos = 0;
  int line = 1;
  while (pos < stripped.size()) {
    size_t eol = stripped.find('\n', pos);
    if (eol == std::string::npos) eol = stripped.size();
    const std::string text_line = stripped.substr(pos, eol - pos);
    if (std::regex_search(text_line, kStaticLine) &&
        text_line.find('(') == std::string::npos &&
        text_line.find("const") == std::string::npos &&
        text_line.find("std::atomic") == std::string::npos &&
        text_line.find("thread_local") == std::string::npos) {
      Report(path, line, "static-mutable-state",
             "non-const, non-atomic static variable outside util/ — shared "
             "counters in executor code must be std::atomic or live in a "
             "class guarded by a Mutex");
    }
    pos = eol + 1;
    ++line;
  }
}

void Linter::CheckMetricRegistration(const std::string& path,
                                     const std::string& stripped) {
  // obs/ holds the registry itself and the tests that poke it directly.
  if (PathContains(path, "obs/")) return;
  static const std::regex kRegister(
      R"(\b(RegisterCounter|RegisterHistogram)\s*\()");
  for (auto it =
           std::sregex_iterator(stripped.begin(), stripped.end(), kRegister);
       it != std::sregex_iterator(); ++it) {
    const size_t off = static_cast<size_t>(it->position());
    Report(path, LineOf(stripped, off), "metric-registration",
           "direct MetricsRegistry::" + (*it)[1].str() +
               " call outside obs/ — declare instruments with "
               "ADASKIP_METRIC_COUNTER / ADASKIP_METRIC_HISTOGRAM "
               "(obs/metrics.h) so they share the central naming scheme and "
               "compile out under ADASKIP_NO_METRICS");
  }
}

void Linter::CheckJournalEmission(const std::string& path,
                                  const std::string& stripped) {
  // obs/ holds the journal itself and the tests that poke it directly.
  if (PathContains(path, "obs/")) return;
  static const std::regex kAppend(R"(\bAppendEvent\s*\()");
  for (auto it =
           std::sregex_iterator(stripped.begin(), stripped.end(), kAppend);
       it != std::sregex_iterator(); ++it) {
    const size_t off = static_cast<size_t>(it->position());
    Report(path, LineOf(stripped, off), "journal-emission",
           "direct EventJournal::AppendEvent call outside obs/ — emit "
           "adaptation events with ADASKIP_JOURNAL_EVENT "
           "(obs/event_journal.h) so the null-journal guard and the replay "
           "contract are enforced at one macro");
  }
}

void Linter::CheckSerializeBinaryPair(const std::string& path,
                                      const std::string& stripped) {
  // A class that can write itself but not read itself back (or vice
  // versa) produces snapshots nothing can restore. Scans every
  // class/struct body for a one-sided declaration.
  static const std::regex kClass(R"((class|struct)\s+([A-Za-z_]\w*)[^;{(]*\{)");
  auto begin = std::sregex_iterator(stripped.begin(), stripped.end(), kClass);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const size_t open = static_cast<size_t>(it->position()) +
                        static_cast<size_t>(it->length()) - 1;
    const size_t end = SkipBraceBlock(stripped, open);
    if (end == std::string::npos) continue;
    const std::string body = stripped.substr(open, end - open);
    const bool has_ser = body.find("SerializeBinary") != std::string::npos;
    const bool has_deser = body.find("DeserializeBinary") != std::string::npos;
    if (has_ser == has_deser) continue;
    const std::string name = (*it)[2].str();
    Report(path, LineOf(stripped, static_cast<size_t>(it->position())),
           "serialize-binary-pair",
           "'" + name + "' declares " +
               (has_ser ? std::string("SerializeBinary without "
                                      "DeserializeBinary — it writes "
                                      "snapshots nothing can read back")
                        : std::string("DeserializeBinary without "
                                      "SerializeBinary — nothing can "
                                      "produce the bytes it expects")) +
               "; persistence round-trips require both halves");
  }
}

void Linter::CheckRawBinaryIo(const std::string& path,
                              const std::string& stripped) {
  // persist/ holds the Sink/Source implementations and the corruption
  // tests that deliberately rewrite snapshot bytes.
  if (PathContains(path, "persist/")) return;

  static const std::regex kCall(R"(\b(fopen|fwrite|fread)\s*\()");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), kCall);
       it != std::sregex_iterator(); ++it) {
    const size_t off = static_cast<size_t>(it->position());
    Report(path, LineOf(stripped, off), "raw-binary-io",
           "raw '" + (*it)[1].str() +
               "' outside persist/ — binary artifacts go through "
               "persist::FileSink / FileSource so they carry the versioned "
               "header and per-block CRC framing Restore depends on");
  }

  static const std::regex kBinaryStream(R"(\bios\s*::\s*binary\b)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      kBinaryStream);
       it != std::sregex_iterator(); ++it) {
    const size_t off = static_cast<size_t>(it->position());
    Report(path, LineOf(stripped, off), "raw-binary-io",
           "std::ios::binary stream outside persist/ — unframed binary "
           "files have no format version and no checksum; use "
           "persist::FileSink / FileSource (text-mode streams are fine)");
  }
}

void Linter::CheckSimdIntrinsics(const std::string& path,
                                 const std::string& stripped) {
  // scan/simd/ is the one blessed home of raw intrinsics: the AVX2
  // translation unit and the dispatch layer that guards it.
  if (PathContains(path, "scan/simd/")) return;

  // Intrinsic headers: <immintrin.h>, <x86intrin.h>, <emmintrin.h>, ...
  // (angle-bracket include operands survive string stripping).
  static const std::regex kIntrinHeader(R"(\b\w*intrin\s*\.\s*h\b)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      kIntrinHeader);
       it != std::sregex_iterator(); ++it) {
    const size_t off = static_cast<size_t>(it->position());
    Report(path, LineOf(stripped, off), "simd-intrinsics",
           "intrinsics header outside scan/simd/ — SIMD goes through the "
           "simd:: dispatch wrappers (scan/simd/kernel_dispatch.h)");
  }

  // Raw intrinsic calls: _mm_*, _mm256_*, _mm512_*.
  static const std::regex kIntrinCall(R"(\b_mm(\d+)?_\w+)");
  for (auto it =
           std::sregex_iterator(stripped.begin(), stripped.end(), kIntrinCall);
       it != std::sregex_iterator(); ++it) {
    const size_t off = static_cast<size_t>(it->position());
    Report(path, LineOf(stripped, off), "simd-intrinsics",
           "raw '" + it->str() +
               "' intrinsic outside scan/simd/ — it bypasses the runtime "
               "CPU check, ADASKIP_FORCE_SCALAR, and the bit-identity "
               "equivalence tests; use the simd:: dispatch wrappers");
  }

  // Raw vector types: __m128/__m256/__m512 and their i/d variants.
  static const std::regex kVectorType(R"(\b__m(128|256|512)[id]?\b)");
  for (auto it =
           std::sregex_iterator(stripped.begin(), stripped.end(), kVectorType);
       it != std::sregex_iterator(); ++it) {
    const size_t off = static_cast<size_t>(it->position());
    Report(path, LineOf(stripped, off), "simd-intrinsics",
           "raw '" + it->str() +
               "' vector type outside scan/simd/ — keep vector-register "
               "code behind the dispatch layer");
  }
}

void Linter::HarvestWorkloadStats(const std::string& path,
                                  const std::string& stripped) {
  // Field declarations inside `class WorkloadStats { ... }`.
  static const std::regex kClass(R"(class\s+WorkloadStats\b[^;{]*\{)");
  std::smatch m;
  if (std::regex_search(stripped, m, kClass)) {
    const size_t open = static_cast<size_t>(m.position()) +
                        static_cast<size_t>(m.length()) - 1;
    const size_t end = SkipBraceBlock(stripped, open);
    if (end != std::string::npos) {
      const std::string body = stripped.substr(open, end - open);
      static const std::regex kField(
          R"(^[ \t]*(?:mutable\s+)?[A-Za-z_][\w:<>, ]*[&* ]\s*([A-Za-z_]\w*_)\s*(?:=[^;]*)?;)");
      size_t pos = 0;
      while (pos < body.size()) {
        size_t eol = body.find('\n', pos);
        if (eol == std::string::npos) eol = body.size();
        const std::string body_line = body.substr(pos, eol - pos);
        std::smatch fm;
        if (body_line.find('(') == std::string::npos &&
            std::regex_search(body_line, fm, kField)) {
          stats_.fields.push_back(fm[1].str());
        }
        pos = eol + 1;
      }
      stats_.decl_file = path;
      stats_.decl_line = LineOf(stripped, static_cast<size_t>(m.position()));
    }
  }

  // Out-of-line Record / Clear bodies.
  const auto harvest_method = [&](const char* method, std::string* body_out,
                                  std::string* file_out, int* line_out) {
    const std::regex sig(std::string(R"(WorkloadStats\s*::\s*)") + method +
                         R"(\s*\()");
    std::smatch sm;
    if (!std::regex_search(stripped, sm, sig)) return;
    const size_t open =
        FindOpenBrace(stripped, static_cast<size_t>(sm.position()));
    if (open == std::string::npos) return;
    const size_t end = SkipBraceBlock(stripped, open);
    if (end == std::string::npos) return;
    *body_out = stripped.substr(open, end - open);
    *file_out = path;
    *line_out = LineOf(stripped, static_cast<size_t>(sm.position()));
  };
  harvest_method("Record", &stats_.record_body, &stats_.record_file,
                 &stats_.record_line);
  harvest_method("Clear", &stats_.clear_body, &stats_.clear_file,
                 &stats_.clear_line);
}

void Linter::LintFile(const std::string& path, const std::string& content) {
  if (PathContains(path, "tools/")) return;  // The linter polices, not itself.
  suppressions_.clear();
  const std::string stripped = StripCommentsAndStrings(content, &suppressions_);
  CheckSkipIndexOverrides(path, stripped);
  CheckForbiddenTokens(path, stripped);
  CheckMetricRegistration(path, stripped);
  CheckJournalEmission(path, stripped);
  CheckSerializeBinaryPair(path, stripped);
  CheckRawBinaryIo(path, stripped);
  CheckSimdIntrinsics(path, stripped);
  HarvestWorkloadStats(path, stripped);
}

std::vector<LintIssue> Linter::Finish() {
  if (!stats_.fields.empty() && !stats_.record_body.empty()) {
    for (const std::string& field : stats_.fields) {
      if (stats_.record_body.find(field) == std::string::npos) {
        issues_.push_back(
            {stats_.record_file, stats_.record_line, "exec-stats-sync",
             "WorkloadStats field '" + field +
                 "' is not accumulated in WorkloadStats::Record — new stats "
                 "must be added to the merge logic"});
      }
    }
  }
  if (!stats_.fields.empty() && !stats_.clear_body.empty() &&
      stats_.clear_body.find("WorkloadStats()") == std::string::npos) {
    // Clear() that is not a whole-object reset must name every field.
    for (const std::string& field : stats_.fields) {
      if (stats_.clear_body.find(field) == std::string::npos) {
        issues_.push_back(
            {stats_.clear_file, stats_.clear_line, "exec-stats-sync",
             "WorkloadStats field '" + field +
                 "' is not reset in WorkloadStats::Clear — either reset every "
                 "field or assign a fresh WorkloadStats()"});
      }
    }
  }
  std::sort(issues_.begin(), issues_.end(),
            [](const LintIssue& a, const LintIssue& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return issues_;
}

}  // namespace adaskip_lint
