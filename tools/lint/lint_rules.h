#ifndef ADASKIP_TOOLS_LINT_LINT_RULES_H_
#define ADASKIP_TOOLS_LINT_LINT_RULES_H_

#include <string>
#include <vector>

/// adaskip_lint: repo-specific invariant checks that neither the compiler
/// nor clang-tidy knows about. Deliberately lightweight — a lexical
/// scanner over comment-/string-stripped source, no libclang — so it
/// builds everywhere the project builds and runs in milliseconds as a
/// ctest and a CI step.
///
/// Rules (ids used in findings and in suppression comments):
///   skip-index-overrides  Every `class X : public SkipIndex` overrides
///                         both OnAppend and Describe. Forgetting
///                         OnAppend silently breaks the live-append
///                         superset contract; forgetting Describe breaks
///                         the introspection surface.
///   exec-stats-sync       Every WorkloadStats field appears in
///                         Record(), and Clear() either resets the whole
///                         object (`*this = WorkloadStats()`) or names
///                         every field. Catches the classic
///                         added-a-counter-forgot-the-merge drift.
///   naked-new             No `new` / `delete` outside util/ — ownership
///                         goes through std::unique_ptr / containers.
///   raw-thread            No `std::thread` spawned outside util/ — all
///                         parallelism goes through ThreadPool
///                         (`std::thread::` static-member uses such as
///                         hardware_concurrency() are fine).
///   raw-sync-primitive    No raw std::mutex / condition_variable /
///                         lock_guard / unique_lock / scoped_lock
///                         outside util/ — use the annotated Mutex /
///                         MutexLock / CondVar wrappers so Clang Thread
///                         Safety Analysis sees every lock.
///   static-mutable-state  No non-const, non-atomic `static` variables
///                         in library code outside util/ — a static
///                         counter in executor code is a data race the
///                         moment two sessions run.
///   metric-registration   No direct MetricsRegistry::RegisterCounter /
///                         RegisterHistogram calls outside obs/ —
///                         instruments are declared via the central
///                         ADASKIP_METRIC_COUNTER / _HISTOGRAM macros
///                         (obs/metrics.h) so every metric shares one
///                         naming scheme, binds once through a
///                         function-local static, and compiles out under
///                         ADASKIP_NO_METRICS. Ad-hoc counter statics
///                         are the "private metric nobody can find"
///                         failure mode.
///   journal-emission      No direct EventJournal::AppendEvent calls
///                         outside obs/ — adaptation events are emitted
///                         through ADASKIP_JOURNAL_EVENT
///                         (obs/event_journal.h) so every call site gets
///                         the null-journal guard and the replay
///                         contract ("journal the inputs the mutation
///                         was computed from") stays auditable at one
///                         macro.
///   serialize-binary-pair Any class/struct that declares SerializeBinary
///                         also declares DeserializeBinary (and vice
///                         versa). A one-sided implementation writes
///                         snapshots nothing can read back — the drift
///                         only surfaces as a restore failure after a
///                         crash, the worst possible moment.
///   raw-binary-io         No fopen/fwrite/fread or std::ios::binary
///                         streams outside persist/ — binary artifacts
///                         are produced through persist::FileSink /
///                         FileSource so every file gets the versioned
///                         snapshot header and per-block CRC framing
///                         that Restore's corruption checks rely on.
///                         Text-mode streams (logs, JSON reports) are
///                         fine.
///   simd-intrinsics       No <immintrin.h>-style includes, _mm*
///                         intrinsics, or __m128/__m256/__m512 vector
///                         types outside scan/simd/ — SIMD goes through
///                         the simd:: dispatch wrappers
///                         (scan/simd/kernel_dispatch.h) so every call
///                         site honours the runtime CPU check, the
///                         ADASKIP_FORCE_SCALAR override, and the
///                         scalar/SIMD bit-identity contract. A stray
///                         intrinsic elsewhere compiles only by luck of
///                         build flags and dodges the equivalence tests.
///
/// Suppressions: a trailing comment `adaskip-lint: allow(<rule-id>)`
/// silences that rule on its own line; a standalone comment (nothing but
/// whitespace before it) silences the line directly below it.
/// Path scoping: files whose path contains "util/" are exempt from the
/// naked-new / raw-thread / raw-sync-primitive / static-mutable-state
/// rules (util/ is where the blessed wrappers live); files whose path
/// contains "obs/" are exempt from metric-registration and
/// journal-emission (the registry/journal implementations and their
/// tests must call the raw APIs); files whose path contains "scan/simd/"
/// are exempt from simd-intrinsics (that directory IS the blessed home
/// of raw intrinsics); files whose path contains "persist/" are exempt
/// from raw-binary-io (the Sink/Source implementations and the
/// corruption tests that deliberately mangle snapshot bytes); files
/// under "tools/" are never scanned.

namespace adaskip_lint {

struct LintIssue {
  std::string file;
  int line = 0;  // 1-based.
  std::string rule;
  std::string message;
};

/// Scans one file's `content` (labelled `path` in findings and for path
/// scoping) and appends per-file findings to `issues`. Cross-file rules
/// (exec-stats-sync) accumulate state inside the Linter and are resolved
/// by Finish().
class Linter {
 public:
  void LintFile(const std::string& path, const std::string& content);

  /// Resolves cross-file rules and returns all findings, sorted by file
  /// then line.
  std::vector<LintIssue> Finish();

 private:
  struct StatsState {
    // Field names harvested from `class WorkloadStats { ... }`.
    std::vector<std::string> fields;
    std::string decl_file;
    int decl_line = 0;
    // Bodies of WorkloadStats::Record / WorkloadStats::Clear.
    std::string record_body;
    std::string record_file;
    int record_line = 0;
    std::string clear_body;
    std::string clear_file;
    int clear_line = 0;
  };

  void CheckSkipIndexOverrides(const std::string& path,
                               const std::string& stripped);
  void CheckForbiddenTokens(const std::string& path,
                            const std::string& stripped);
  void CheckMetricRegistration(const std::string& path,
                               const std::string& stripped);
  void CheckJournalEmission(const std::string& path,
                            const std::string& stripped);
  void CheckSerializeBinaryPair(const std::string& path,
                                const std::string& stripped);
  void CheckRawBinaryIo(const std::string& path,
                        const std::string& stripped);
  void CheckSimdIntrinsics(const std::string& path,
                           const std::string& stripped);
  void HarvestWorkloadStats(const std::string& path,
                            const std::string& stripped);

  bool Suppressed(int line, const std::string& rule) const;
  void Report(const std::string& path, int line, const std::string& rule,
              const std::string& message);

  // Suppression comments of the file currently being linted:
  // line number -> rule id.
  std::vector<std::pair<int, std::string>> suppressions_;

  StatsState stats_;
  std::vector<LintIssue> issues_;
};

/// Replaces comments, string literals, and char literals with spaces
/// (newlines preserved, so offsets keep their line numbers), and records
/// `adaskip-lint: allow(<rule>)` suppressions found in the removed
/// comments. Exposed for tests.
std::string StripCommentsAndStrings(
    const std::string& content,
    std::vector<std::pair<int, std::string>>* suppressions);

/// 1-based line number of byte `offset` in `text`.
int LineOf(const std::string& text, size_t offset);

}  // namespace adaskip_lint

#endif  // ADASKIP_TOOLS_LINT_LINT_RULES_H_
