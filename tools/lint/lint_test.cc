// Self-test for adaskip_lint: the known-bad fixtures must be flagged
// (each expected finding, and nothing unexpected) and the known-good
// fixture must come back clean. Fixtures live in testdata/ and are fed
// to the Linter under src/-style labels, because real tools/ paths are
// never scanned.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_rules.h"

namespace adaskip_lint {
namespace {

#ifndef ADASKIP_LINT_TESTDATA
#error "ADASKIP_LINT_TESTDATA must point at tools/lint/testdata"
#endif

std::string ReadFixture(const std::string& rel) {
  const std::string path = std::string(ADASKIP_LINT_TESTDATA) + "/" + rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<LintIssue> LintUnderLabel(const std::string& fixture,
                                      const std::string& label) {
  Linter linter;
  linter.LintFile(label, ReadFixture(fixture));
  return linter.Finish();
}

int CountRule(const std::vector<LintIssue>& issues, const std::string& rule) {
  return static_cast<int>(
      std::count_if(issues.begin(), issues.end(),
                    [&](const LintIssue& i) { return i.rule == rule; }));
}

TEST(StripTest, RemovesCommentsAndStringsKeepsLines) {
  std::vector<std::pair<int, std::string>> suppressions;
  const std::string stripped = StripCommentsAndStrings(
      "int a; // new delete\n"
      "const char* s = \"std::mutex\";\n"
      "/* std::thread\n   spans lines */ int b;\n"
      "char c = '\\'';\n"
      "auto r = R\"x(new delete)x\";\n",
      &suppressions);
  EXPECT_EQ(stripped.find("new"), std::string::npos);
  EXPECT_EQ(stripped.find("delete"), std::string::npos);
  EXPECT_EQ(stripped.find("std::mutex"), std::string::npos);
  EXPECT_EQ(stripped.find("std::thread"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
  // Line structure is preserved: `int b;` still reports line 4.
  EXPECT_EQ(LineOf(stripped, stripped.find("int b;")), 4);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 6);
}

TEST(StripTest, DigitSeparatorsAreNotCharLiterals) {
  std::vector<std::pair<int, std::string>> suppressions;
  const std::string stripped =
      StripCommentsAndStrings("int64_t big = 1'000'000; int tail = 7;\n",
                              &suppressions);
  EXPECT_NE(stripped.find("int tail = 7;"), std::string::npos);
}

TEST(StripTest, HarvestsSuppressionsFromComments) {
  std::vector<std::pair<int, std::string>> suppressions;
  StripCommentsAndStrings(
      "// adaskip-lint: allow(raw-thread)\n"
      "int x;  // adaskip-lint: allow(naked-new)\n",
      &suppressions);
  // Suppressions are recorded under their TARGET line: the standalone
  // comment on line 1 targets line 2, the trailing one targets line 2.
  ASSERT_EQ(suppressions.size(), 2u);
  EXPECT_EQ(suppressions[0], (std::pair<int, std::string>{2, "raw-thread"}));
  EXPECT_EQ(suppressions[1], (std::pair<int, std::string>{2, "naked-new"}));
}

TEST(BadFixtures, MissingOverridesFlagged) {
  const std::vector<LintIssue> issues = LintUnderLabel(
      "bad/missing_overrides.cc", "src/adaskip/skipping/missing_overrides.cc");
  // BrokenIndex: both missing. HalfIndex: Describe missing.
  EXPECT_EQ(CountRule(issues, "skip-index-overrides"), 3);
  EXPECT_EQ(issues.size(), 3u);
  int describe_findings = 0;
  for (const LintIssue& issue : issues) {
    EXPECT_EQ(issue.file, "src/adaskip/skipping/missing_overrides.cc");
    if (issue.message.find("Describe") != std::string::npos) {
      ++describe_findings;
    }
  }
  EXPECT_EQ(describe_findings, 2);
}

TEST(BadFixtures, ForbiddenTokensFlagged) {
  const std::vector<LintIssue> issues = LintUnderLabel(
      "bad/forbidden_tokens.cc", "src/adaskip/engine/forbidden_tokens.cc");
  EXPECT_EQ(CountRule(issues, "static-mutable-state"), 1);
  EXPECT_EQ(CountRule(issues, "naked-new"), 2);  // new + delete.
  EXPECT_EQ(CountRule(issues, "raw-thread"), 1);
  EXPECT_EQ(CountRule(issues, "raw-sync-primitive"), 1);
  EXPECT_EQ(issues.size(), 5u);
}

TEST(BadFixtures, ForbiddenTokensExemptUnderUtil) {
  // The same content under util/ is the blessed implementation layer.
  const std::vector<LintIssue> issues = LintUnderLabel(
      "bad/forbidden_tokens.cc", "src/adaskip/util/forbidden_tokens.cc");
  EXPECT_TRUE(issues.empty());
}

TEST(BadFixtures, AdhocMetricRegistrationFlagged) {
  const std::vector<LintIssue> issues = LintUnderLabel(
      "bad/adhoc_metric.cc", "src/adaskip/engine/adhoc_metric.cc");
  // One RegisterCounter + one RegisterHistogram; the macro use is fine.
  EXPECT_EQ(CountRule(issues, "metric-registration"), 2);
  EXPECT_EQ(issues.size(), 2u);
  for (const LintIssue& issue : issues) {
    EXPECT_NE(issue.message.find("ADASKIP_METRIC_COUNTER"),
              std::string::npos);
  }
}

TEST(BadFixtures, MetricRegistrationExemptUnderObs) {
  // The registry implementation and its tests live in obs/ and must call
  // the raw API.
  const std::vector<LintIssue> issues = LintUnderLabel(
      "bad/adhoc_metric.cc", "src/adaskip/obs/adhoc_metric.cc");
  EXPECT_EQ(CountRule(issues, "metric-registration"), 0);
  const std::vector<LintIssue> test_issues = LintUnderLabel(
      "bad/adhoc_metric.cc", "tests/obs/adhoc_metric_test.cc");
  EXPECT_EQ(CountRule(test_issues, "metric-registration"), 0);
}

TEST(BadFixtures, MetricRegistrationSuppressible) {
  Linter linter;
  linter.LintFile(
      "src/adaskip/engine/s.cc",
      "// adaskip-lint: allow(metric-registration)\n"
      "auto& c = obs::MetricsRegistry::Global().RegisterCounter(\n"
      "    \"x\", \"y\");\n");
  EXPECT_TRUE(linter.Finish().empty());
}

TEST(BadFixtures, AdhocJournalEmissionFlagged) {
  const std::vector<LintIssue> issues = LintUnderLabel(
      "bad/adhoc_journal.cc", "src/adaskip/adaptive/adhoc_journal.cc");
  // Two direct AppendEvent calls; the macro use is fine.
  EXPECT_EQ(CountRule(issues, "journal-emission"), 2);
  EXPECT_EQ(issues.size(), 2u);
  for (const LintIssue& issue : issues) {
    EXPECT_NE(issue.message.find("ADASKIP_JOURNAL_EVENT"),
              std::string::npos);
  }
}

TEST(BadFixtures, JournalEmissionExemptUnderObs) {
  // The journal implementation and its tests live in obs/ and must call
  // the raw API.
  const std::vector<LintIssue> issues = LintUnderLabel(
      "bad/adhoc_journal.cc", "src/adaskip/obs/adhoc_journal.cc");
  EXPECT_EQ(CountRule(issues, "journal-emission"), 0);
  const std::vector<LintIssue> test_issues = LintUnderLabel(
      "bad/adhoc_journal.cc", "tests/obs/adhoc_journal_test.cc");
  EXPECT_EQ(CountRule(test_issues, "journal-emission"), 0);
}

TEST(BadFixtures, JournalEmissionSuppressible) {
  Linter linter;
  linter.LintFile(
      "src/adaskip/engine/s.cc",
      "void F(adaskip::obs::EventJournal* j) {\n"
      "  // adaskip-lint: allow(journal-emission)\n"
      "  j->AppendEvent({});\n"
      "}\n");
  EXPECT_TRUE(linter.Finish().empty());
}

TEST(BadFixtures, SerializeMismatchFlagged) {
  const std::vector<LintIssue> issues =
      LintUnderLabel("bad/serialize_mismatch.cc",
                     "src/adaskip/skipping/serialize_mismatch.cc");
  // WriteOnlyIndex (serialize only) + ReadOnlyState (deserialize only);
  // RoundTripIndex and Ephemeral contribute nothing.
  EXPECT_EQ(CountRule(issues, "serialize-binary-pair"), 2);
  EXPECT_EQ(issues.size(), 2u);
  int write_only = 0;
  for (const LintIssue& issue : issues) {
    if (issue.message.find("WriteOnlyIndex") != std::string::npos) {
      ++write_only;
      EXPECT_NE(issue.message.find("without DeserializeBinary"),
                std::string::npos);
    }
  }
  EXPECT_EQ(write_only, 1);
}

TEST(BadFixtures, SerializeMismatchSuppressible) {
  Linter linter;
  linter.LintFile("src/adaskip/skipping/s.h",
                  "// adaskip-lint: allow(serialize-binary-pair)\n"
                  "class LegacyReader {\n"
                  " public:\n"
                  "  Status DeserializeBinary(persist::Source& source);\n"
                  "};\n");
  EXPECT_TRUE(linter.Finish().empty());
}

TEST(BadFixtures, RawBinaryIoFlagged) {
  const std::vector<LintIssue> issues = LintUnderLabel(
      "bad/raw_binary_io.cc", "src/adaskip/engine/raw_binary_io.cc");
  // Two fopen + one fwrite + one fread + one ios::binary; the text-mode
  // report writer contributes nothing.
  EXPECT_EQ(CountRule(issues, "raw-binary-io"), 5);
  EXPECT_EQ(issues.size(), 5u);
}

TEST(BadFixtures, RawBinaryIoExemptUnderPersist) {
  // The Sink/Source implementations and the corruption tests that
  // deliberately mangle snapshot bytes live under persist/ paths.
  const std::vector<LintIssue> issues = LintUnderLabel(
      "bad/raw_binary_io.cc", "src/adaskip/persist/raw_binary_io.cc");
  EXPECT_EQ(CountRule(issues, "raw-binary-io"), 0);
  const std::vector<LintIssue> test_issues = LintUnderLabel(
      "bad/raw_binary_io.cc", "tests/persist/raw_binary_io_test.cc");
  EXPECT_EQ(CountRule(test_issues, "raw-binary-io"), 0);
}

TEST(BadFixtures, SimdIntrinsicsFlagged) {
  const std::vector<LintIssue> issues = LintUnderLabel(
      "bad/simd_intrinsics.cc", "src/adaskip/engine/simd_intrinsics.cc");
  // Header + _mm256_loadu_si256 + two __m256i uses; the allow()ed
  // movemask line contributes nothing.
  EXPECT_EQ(CountRule(issues, "simd-intrinsics"), 4);
  EXPECT_EQ(issues.size(), 4u);
}

TEST(BadFixtures, SimdIntrinsicsAllowedInDispatchHome) {
  // The same file under scan/simd/ is the blessed implementation layer.
  const std::vector<LintIssue> issues = LintUnderLabel(
      "bad/simd_intrinsics.cc", "src/adaskip/scan/simd/simd_avx2.cc");
  EXPECT_TRUE(issues.empty());
}

TEST(BadFixtures, StatsDriftFlagged) {
  const std::vector<LintIssue> issues = LintUnderLabel(
      "bad/stats_drift.cc", "src/adaskip/engine/stats_drift.cc");
  // probe_nanos_ forgotten in both Record and Clear.
  EXPECT_EQ(CountRule(issues, "exec-stats-sync"), 2);
  EXPECT_EQ(issues.size(), 2u);
  for (const LintIssue& issue : issues) {
    EXPECT_NE(issue.message.find("probe_nanos_"), std::string::npos);
  }
}

TEST(GoodFixtures, CleanFilePasses) {
  const std::vector<LintIssue> issues =
      LintUnderLabel("good/clean.cc", "src/adaskip/engine/clean.cc");
  EXPECT_TRUE(issues.empty()) << [&] {
    std::ostringstream out;
    for (const LintIssue& issue : issues) {
      out << issue.file << ":" << issue.line << ": [" << issue.rule << "] "
          << issue.message << "\n";
    }
    return out.str();
  }();
}

TEST(GoodFixtures, ToolsPathsNeverScanned) {
  const std::vector<LintIssue> issues = LintUnderLabel(
      "bad/forbidden_tokens.cc", "tools/lint/forbidden_tokens.cc");
  EXPECT_TRUE(issues.empty());
}

TEST(Suppression, SameLineAndLineAboveOnly) {
  Linter linter;
  linter.LintFile("src/adaskip/engine/s.cc",
                  "// adaskip-lint: allow(raw-thread)\n"
                  "std::thread a;\n"
                  "std::thread b;  // adaskip-lint: allow(raw-thread)\n"
                  "std::thread c;\n");
  const std::vector<LintIssue> issues = linter.Finish();
  ASSERT_EQ(issues.size(), 1u);  // Only `c` on line 4 fires.
  EXPECT_EQ(issues[0].line, 4);
  EXPECT_EQ(issues[0].rule, "raw-thread");
}

TEST(Suppression, WrongRuleIdDoesNotSilence) {
  Linter linter;
  linter.LintFile("src/adaskip/engine/s.cc",
                  "std::thread a;  // adaskip-lint: allow(naked-new)\n");
  EXPECT_EQ(linter.Finish().size(), 1u);
}

TEST(StatsSync, WholeObjectClearAccepted) {
  Linter linter;
  linter.LintFile("src/adaskip/engine/s.h",
                  "class WorkloadStats {\n"
                  " private:\n"
                  "  int64_t num_queries_ = 0;\n"
                  "  int64_t rows_scanned_ = 0;\n"
                  "};\n");
  linter.LintFile("src/adaskip/engine/s.cc",
                  "void WorkloadStats::Record(const QueryStats& s) {\n"
                  "  ++num_queries_;\n"
                  "  rows_scanned_ += s.rows_scanned;\n"
                  "}\n"
                  "void WorkloadStats::Clear() { *this = WorkloadStats(); }\n");
  EXPECT_TRUE(linter.Finish().empty());
}

TEST(StatsSync, FieldMissingFromRecordFlagged) {
  Linter linter;
  linter.LintFile("src/adaskip/engine/s.h",
                  "class WorkloadStats {\n"
                  " private:\n"
                  "  int64_t num_queries_ = 0;\n"
                  "  int64_t adapt_nanos_ = 0;\n"
                  "};\n");
  linter.LintFile("src/adaskip/engine/s.cc",
                  "void WorkloadStats::Record(const QueryStats& s) {\n"
                  "  ++num_queries_;\n"
                  "}\n"
                  "void WorkloadStats::Clear() { *this = WorkloadStats(); }\n");
  const std::vector<LintIssue> issues = linter.Finish();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "exec-stats-sync");
  EXPECT_NE(issues[0].message.find("adapt_nanos_"), std::string::npos);
  EXPECT_NE(issues[0].message.find("Record"), std::string::npos);
}

}  // namespace
}  // namespace adaskip_lint
