#ifndef ADASKIP_TOOLS_LINT_RULES_H_
#define ADASKIP_TOOLS_LINT_RULES_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analyzer.h"

/// Internal wiring between the Analyzer and the rule implementation
/// translation units. Each Add*Rules call appends its family to the
/// catalog; AddLayeringRule also hands back a pointer so the Analyzer
/// can render the DOT artifact after Run().
namespace adaskip_analyze {

class LayeringDagRule : public Rule {
 public:
  std::string_view id() const override { return "layering-dag"; }
  void Check(const SourceFile& file, Reporter& reporter) override;

  /// Include edges seen so far, as (from-subsystem, to-subsystem),
  /// deduplicated, with a violation flag per edge.
  struct Edge {
    std::string from;
    std::string to;
    bool violation = false;
  };
  const std::vector<Edge>& edges() const { return edges_; }

  /// The declared normative order; a subsystem may include itself and
  /// anything earlier in the list. Exposed for the DOT renderer and the
  /// self-check in the constructor.
  static const std::vector<std::string>& DeclaredOrder();

  LayeringDagRule();  // Verifies the declared adjacency is acyclic.

 private:
  void RecordEdge(const std::string& from, const std::string& to,
                  bool violation);
  std::vector<Edge> edges_;
};

void AddStyleRules(std::vector<std::unique_ptr<Rule>>* rules);
void AddContractRules(std::vector<std::unique_ptr<Rule>>* rules);
void AddDeterminismRules(std::vector<std::unique_ptr<Rule>>* rules);

/// Shared matcher helpers used across rule TUs. All operate on the
/// code-token view of `file`.

/// True if the code token at `i` is an identifier immediately followed
/// by '(' — i.e. spelled like a call or a function declarator.
bool IdentThenParen(const SourceFile& file, int i);

/// Code index of the ')' matching the '(' at code index `open`
/// (-1 if unbalanced).
int MatchParen(const SourceFile& file, int open);

/// Scans identifier-shaped words inside free text (a preprocessor
/// directive's logical line) and invokes fn(word) for each.
void ForEachWordInText(const std::string& text,
                       const std::function<void(std::string_view)>& fn);

/// If the preprocessor directive `text` is an #include, returns the
/// operand with its delimiters ("..." or <...>) stripped; otherwise "".
std::string IncludeOperand(const std::string& text);

}  // namespace adaskip_analyze

#endif  // ADASKIP_TOOLS_LINT_RULES_H_
