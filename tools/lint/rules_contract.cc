// Contract rules: the SkipIndex surface contract, WorkloadStats merge
// drift, serialization pairing, IndexKind dispatch exhaustiveness, and
// the status-must-use escape hatch audit. These are the rules that make
// "add the eighth skipping structure" a compile-time conversation with
// CI instead of a restore failure in production.

#include <array>
#include <cctype>
#include <set>

#include "rules.h"

namespace adaskip_analyze {

namespace {

/// skip-index-overrides: every `class X : public SkipIndex` overrides
/// all five contract surfaces. OnAppend keeps the live-append superset
/// contract; Describe keeps introspection; MemoryUsageBytes keeps the
/// cost model honest; SerializeBinary/DeserializeBinary keep crash
/// restore complete.
class SkipIndexOverridesRule : public Rule {
 public:
  std::string_view id() const override { return "skip-index-overrides"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    for (int i = 0; i + 1 < file.NumCode(); ++i) {
      if (!file.CodeIs(i, TokKind::kIdent, "class")) continue;
      if (file.Code(i + 1).kind != TokKind::kIdent) continue;
      const std::string& name = file.Code(i + 1).text;
      // Scan the class head for `: ... public SkipIndex` before '{'.
      bool subclass = false;
      int open = -1;
      for (int j = i + 2; j < file.NumCode(); ++j) {
        const Token& t = file.Code(j);
        if (t.kind == TokKind::kPunct && (t.text == ";" || t.text == "(")) {
          break;  // Forward declaration or something else entirely.
        }
        if (t.kind == TokKind::kPunct && t.text == "{") {
          open = j;
          break;
        }
        if (t.kind == TokKind::kIdent && t.text == "SkipIndex" && j > i + 2) {
          subclass = true;
        }
      }
      if (!subclass || open < 0) continue;
      const int close = file.MatchBrace(open);
      if (close < 0) continue;
      const int line = file.Code(i).line;
      struct Surface {
        std::string_view name;
        std::string_view why;
      };
      static constexpr std::array<Surface, 5> kSurfaces = {{
          {"OnAppend", "appends would break the superset contract"},
          {"Describe", "introspection surfaces would lose it"},
          {"MemoryUsageBytes", "memory accounting would undercount it"},
          {"SerializeBinary", "checkpoints would silently omit its state"},
          {"DeserializeBinary", "crash restore could not rebuild it"},
      }};
      for (const Surface& surface : kSurfaces) {
        if (!HasOverride(file, open, close, surface.name)) {
          reporter.Report(file, line, id(),
                          "SkipIndex subclass '" + name +
                              "' does not override " +
                              std::string(surface.name) + " — " +
                              std::string(surface.why));
        }
      }
      i = close;
    }
  }

 private:
  /// True if `surface` is declared with `override` inside [open, close].
  static bool HasOverride(const SourceFile& file, int open, int close,
                          std::string_view surface) {
    for (int i = open + 1; i < close; ++i) {
      if (file.Code(i).text != surface || !file.CodeIs(i + 1, "(")) continue;
      const int paren_close = MatchParen(file, i + 1);
      if (paren_close < 0) continue;
      for (int j = paren_close + 1; j < close; ++j) {
        const Token& t = file.Code(j);
        if (t.kind == TokKind::kPunct &&
            (t.text == ";" || t.text == "{" || t.text == "=")) {
          break;
        }
        if (t.kind == TokKind::kIdent && t.text == "override") return true;
      }
    }
    return false;
  }
};

/// exec-stats-sync: for every execution-stats accumulator class
/// (WorkloadStats, ServerStats), each field appears in Record(), and
/// Clear() either resets the whole object or names every field. For
/// ServerStats there is a third synchronized surface: every field's
/// base-name (trailing '_' stripped) must appear in the
/// RecordServerMetrics registration site, so each server stat is also
/// exported as a first-class registry metric on /metrics — a stat that
/// exists only in the Summary() string is invisible to dashboards.
class ExecStatsSyncRule : public Rule {
 public:
  std::string_view id() const override { return "exec-stats-sync"; }

  void Collect(const SourceFile& file) override {
    for (ClassSync& cls : classes_) {
      HarvestFields(file, cls);
      HarvestMethod(file, cls.name, "Record", &cls.record);
      HarvestMethod(file, cls.name, "Clear", &cls.clear);
      if (!cls.export_fn.empty()) {
        HarvestFreeFunction(file, cls.export_fn, &cls.exports);
      }
    }
  }

  void Finish(Reporter& reporter) override {
    for (const ClassSync& cls : classes_) {
      if (cls.fields.empty()) continue;
      if (!cls.record.idents.empty()) {
        for (const std::string& field : cls.fields) {
          if (cls.record.idents.count(field) == 0) {
            reporter.ReportAt(
                cls.record.file, cls.record.line, id(),
                cls.name + " field '" + field + "' is not accumulated in " +
                    cls.name + "::Record — new stats must be added to the "
                    "merge logic");
          }
        }
      }
      if (!cls.clear.idents.empty() && !cls.clear.whole_object_reset) {
        for (const std::string& field : cls.fields) {
          if (cls.clear.idents.count(field) == 0) {
            reporter.ReportAt(
                cls.clear.file, cls.clear.line, id(),
                cls.name + " field '" + field + "' is not reset in " +
                    cls.name + "::Clear — either reset every field or "
                    "assign a fresh " + cls.name + "()");
          }
        }
      }
      if (cls.export_fn.empty()) continue;
      if (cls.exports.idents.empty()) {
        reporter.ReportAt(
            cls.fields_file, cls.fields_line, id(),
            cls.name + " has no " + cls.export_fn + " definition — every " +
                cls.name + " field must be exported as a registry metric at "
                "one registration site the /metrics exposition can render");
        continue;
      }
      for (const std::string& field : cls.fields) {
        std::string base = field;
        if (!base.empty() && base.back() == '_') base.pop_back();
        if (cls.exports.idents.count(base) == 0) {
          reporter.ReportAt(
              cls.exports.file, cls.exports.line, id(),
              cls.name + " field '" + field + "' is not exported in " +
                  cls.export_fn + " — every server stat must surface as a "
                  "first-class registry metric (counter, gauge, or "
                  "histogram), not only in the Summary() string");
        }
      }
    }
  }

 private:
  struct MethodBody {
    std::string file;
    int line = 0;
    std::set<std::string> idents;
    bool whole_object_reset = false;  // Body contains `<ClassName>()`.
  };

  /// One tracked accumulator class and everything harvested about it.
  struct ClassSync {
    std::string name;
    /// Free function that must export every field as a registry metric
    /// (empty when the class has no exposition contract).
    std::string export_fn;
    std::vector<std::string> fields;
    std::string fields_file;
    int fields_line = 0;
    MethodBody record;
    MethodBody clear;
    MethodBody exports;
  };

  void HarvestFields(const SourceFile& file, ClassSync& cls) {
    for (int i = 0; i + 1 < file.NumCode(); ++i) {
      if (!file.CodeIs(i, TokKind::kIdent, "class") ||
          !file.CodeIs(i + 1, TokKind::kIdent, cls.name)) {
        continue;
      }
      int open = -1;
      for (int j = i + 2; j < file.NumCode(); ++j) {
        const std::string& t = file.Code(j).text;
        if (t == ";") break;
        if (t == "{") {
          open = j;
          break;
        }
      }
      if (open < 0) continue;
      const int close = file.MatchBrace(open);
      if (close < 0) continue;
      cls.fields_file = file.path;
      cls.fields_line = file.Code(i).line;
      // Depth-1 statements without parentheses are field declarations;
      // harvest the trailing-underscore identifiers they declare.
      int depth = 1;
      bool stmt_has_paren = false;
      std::string last_underscore_ident;
      for (int j = open + 1; j < close; ++j) {
        const Token& t = file.Code(j);
        if (t.kind == TokKind::kPunct) {
          if (t.text == "{") ++depth;
          if (t.text == "}") --depth;
          if (t.text == "(") stmt_has_paren = true;
          if (t.text == ";" && depth == 1) {
            if (!stmt_has_paren && !last_underscore_ident.empty()) {
              cls.fields.push_back(last_underscore_ident);
            }
            stmt_has_paren = false;
            last_underscore_ident.clear();
          }
        } else if (t.kind == TokKind::kIdent && depth == 1 &&
                   t.text.size() > 1 && t.text.back() == '_' &&
                   last_underscore_ident.empty()) {
          last_underscore_ident = t.text;
        }
      }
      return;
    }
  }

  void HarvestMethod(const SourceFile& file, const std::string& cls_name,
                     std::string_view method, MethodBody* out) {
    for (int i = 0; i + 3 < file.NumCode(); ++i) {
      if (!file.CodeIs(i, TokKind::kIdent, cls_name) ||
          !file.CodeIs(i + 1, "::") || file.Code(i + 2).text != method ||
          !file.CodeIs(i + 3, "(")) {
        continue;
      }
      int open = -1;
      for (int j = i + 3; j < file.NumCode(); ++j) {
        if (file.CodeIs(j, TokKind::kPunct, "{")) {
          open = j;
          break;
        }
      }
      if (open < 0) return;
      const int close = file.MatchBrace(open);
      if (close < 0) return;
      out->file = file.path;
      out->line = file.Code(i).line;
      for (int j = open + 1; j < close; ++j) {
        const Token& t = file.Code(j);
        if (t.kind == TokKind::kIdent) {
          out->idents.insert(t.text);
          if (t.text == cls_name && file.CodeIs(j + 1, "(")) {
            out->whole_object_reset = true;
          }
        }
      }
      return;
    }
  }

  /// Harvests the definition of free function `fn` (parameters included,
  /// so a field exported straight from a parameter still counts). Call
  /// sites and declarations — nothing but identifiers may sit between
  /// the parameter list's ')' and the body's '{' — are skipped.
  void HarvestFreeFunction(const SourceFile& file, const std::string& fn,
                           MethodBody* out) {
    for (int i = 0; i < file.NumCode(); ++i) {
      if (file.Code(i).text != fn || !file.CodeIs(i + 1, "(")) continue;
      const int paren_close = MatchParen(file, i + 1);
      if (paren_close < 0) continue;
      int open = -1;
      for (int j = paren_close + 1; j < file.NumCode(); ++j) {
        const Token& t = file.Code(j);
        if (t.kind == TokKind::kPunct && t.text == "{") {
          open = j;
          break;
        }
        if (t.kind != TokKind::kIdent) break;
      }
      if (open < 0) continue;
      const int close = file.MatchBrace(open);
      if (close < 0) continue;
      out->file = file.path;
      out->line = file.Code(i).line;
      for (int j = i + 2; j < close; ++j) {
        const Token& t = file.Code(j);
        if (t.kind == TokKind::kIdent) out->idents.insert(t.text);
      }
      return;
    }
  }

  std::vector<ClassSync> classes_ = {{"WorkloadStats", ""},
                                     {"ServerStats", "RecordServerMetrics"}};
};

/// serialize-binary-pair: any class/struct declaring SerializeBinary
/// also declares DeserializeBinary, and vice versa.
class SerializeBinaryPairRule : public Rule {
 public:
  std::string_view id() const override { return "serialize-binary-pair"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    for (int i = 0; i + 1 < file.NumCode(); ++i) {
      const Token& kw = file.Code(i);
      if (kw.kind != TokKind::kIdent ||
          (kw.text != "class" && kw.text != "struct")) {
        continue;
      }
      if (file.CodeIs(i - 1, TokKind::kIdent, "enum")) continue;
      if (file.Code(i + 1).kind != TokKind::kIdent) continue;
      const std::string& name = file.Code(i + 1).text;
      int open = -1;
      for (int j = i + 2; j < file.NumCode(); ++j) {
        const std::string& t = file.Code(j).text;
        if (t == ";" || t == "(") break;  // Fwd decl / not a class head.
        if (t == "{") {
          open = j;
          break;
        }
      }
      if (open < 0) continue;
      const int close = file.MatchBrace(open);
      if (close < 0) continue;
      bool has_ser = false;
      bool has_deser = false;
      for (int j = open + 1; j < close; ++j) {
        const Token& t = file.Code(j);
        if (t.kind != TokKind::kIdent) continue;
        if (t.text == "SerializeBinary") has_ser = true;
        if (t.text == "DeserializeBinary") has_deser = true;
      }
      if (has_ser != has_deser) {
        reporter.Report(
            file, kw.line, id(),
            "'" + name + "' declares " +
                (has_ser ? std::string("SerializeBinary without "
                                       "DeserializeBinary — it writes "
                                       "snapshots nothing can read back")
                         : std::string("DeserializeBinary without "
                                       "SerializeBinary — nothing can "
                                       "produce the bytes it expects")) +
                "; persistence round-trips require both halves");
      }
      // Do not skip the body: nested classes are scanned by the outer
      // loop exactly like the stripped-lexical predecessor did.
    }
  }
};

/// index-kind-exhaustive: harvest `enum class IndexKind` and verify
/// every enumerator appears in every kind-dispatch definition
/// (IndexKindToString, each MakeSkipIndex overload, and
/// ValidateIndexOptions — the serde/factory/validation registry). The
/// five per-kind behavioral surfaces (OnAppend, Describe,
/// MemoryUsageBytes, SerializeBinary, DeserializeBinary) are virtuals,
/// so their per-kind coverage is enforced by skip-index-overrides.
class IndexKindExhaustiveRule : public Rule {
 public:
  std::string_view id() const override { return "index-kind-exhaustive"; }

  void Collect(const SourceFile& file) override {
    if (!PathContains(file.path, "src/")) return;
    HarvestEnum(file);
    for (std::string_view site : kSites) HarvestSite(file, site);
  }

  void Finish(Reporter& reporter) override {
    if (enumerators_.empty()) return;
    for (std::string_view site : kSites) {
      bool found = false;
      for (const SiteDef& def : defs_) {
        if (def.name == site) found = true;
      }
      if (!found) {
        reporter.ReportAt(enum_file_, enum_line_, id(),
                          "no definition of IndexKind dispatch site '" +
                              std::string(site) +
                              "' was found — every kind-dispatch surface "
                              "must exist and be scanned");
      }
    }
    for (const SiteDef& def : defs_) {
      for (const std::string& enumerator : enumerators_) {
        if (def.idents.count(enumerator) == 0) {
          reporter.ReportAt(
              def.file, def.line, id(),
              "IndexKind::" + enumerator + " is not handled in '" + def.name +
                  "' — every enumerator must appear in every dispatch site "
                  "(adding a kind with a missing surface fails here, not in "
                  "a restore)");
        }
      }
    }
  }

 private:
  static constexpr std::array<std::string_view, 3> kSites = {
      "IndexKindToString", "MakeSkipIndex", "ValidateIndexOptions"};

  struct SiteDef {
    std::string name;
    std::string file;
    int line = 0;
    std::set<std::string> idents;
  };

  void HarvestEnum(const SourceFile& file) {
    for (int i = 0; i + 2 < file.NumCode(); ++i) {
      if (!file.CodeIs(i, TokKind::kIdent, "enum") ||
          !file.CodeIs(i + 1, TokKind::kIdent, "class") ||
          !file.CodeIs(i + 2, TokKind::kIdent, "IndexKind")) {
        continue;
      }
      int open = -1;
      for (int j = i + 3; j < file.NumCode(); ++j) {
        const std::string& t = file.Code(j).text;
        if (t == ";") break;  // Opaque-enum declaration.
        if (t == "{") {
          open = j;
          break;
        }
      }
      if (open < 0) continue;
      const int close = file.MatchBrace(open);
      if (close < 0) continue;
      enum_file_ = file.path;
      enum_line_ = file.Code(i).line;
      // Enumerator, optionally `= value`, separated by commas.
      int j = open + 1;
      while (j < close) {
        if (file.Code(j).kind == TokKind::kIdent) {
          enumerators_.push_back(file.Code(j).text);
        }
        while (j < close && file.Code(j).text != ",") ++j;
        ++j;
      }
      return;
    }
  }

  void HarvestSite(const SourceFile& file, std::string_view site) {
    for (int i = 0; i < file.NumCode(); ++i) {
      if (file.Code(i).text != site || !file.CodeIs(i + 1, "(")) continue;
      const int paren_close = MatchParen(file, i + 1);
      if (paren_close < 0) continue;
      // A definition: only identifiers (const, noexcept, ...) between
      // the parameter list and the '{'. Anything else is a call site or
      // a declaration.
      int open = -1;
      for (int j = paren_close + 1; j < file.NumCode(); ++j) {
        const Token& t = file.Code(j);
        if (t.kind == TokKind::kPunct && t.text == "{") {
          open = j;
          break;
        }
        if (t.kind != TokKind::kIdent) break;
      }
      if (open < 0) continue;
      const int close = file.MatchBrace(open);
      if (close < 0) continue;
      SiteDef def;
      def.name = std::string(site);
      def.file = file.path;
      def.line = file.Code(i).line;
      for (int j = open + 1; j < close; ++j) {
        if (file.Code(j).kind == TokKind::kIdent) {
          def.idents.insert(file.Code(j).text);
        }
      }
      defs_.push_back(std::move(def));
      i = close;
    }
  }

  std::vector<std::string> enumerators_;
  std::string enum_file_;
  int enum_line_ = 0;
  std::vector<SiteDef> defs_;
};

/// status-must-use: Status and Result are [[nodiscard]], but two
/// escapes silence the compiler inconsistently across GCC/Clang: the
/// `(void)`-cast and the comma operator. Harvest every function that
/// returns Status/Result (library headers and sources), then flag those
/// escapes at call sites in library and example code.
class StatusMustUseRule : public Rule {
 public:
  std::string_view id() const override { return "status-must-use"; }

  void Collect(const SourceFile& file) override {
    if (!PathContains(file.path, "src/")) return;
    for (int i = 0; i < file.NumCode(); ++i) {
      const Token& t = file.Code(i);
      if (t.kind != TokKind::kIdent) continue;
      int name_idx = -1;
      if (t.text == "Status") {
        name_idx = i + 1;
      } else if (t.text == "Result" && file.CodeIs(i + 1, "<")) {
        // Skip the template argument list (tracking nested <>, with
        // `>>` closing two).
        int depth = 0;
        int j = i + 1;
        for (; j < file.NumCode(); ++j) {
          const std::string& p = file.Code(j).text;
          if (p == "<") ++depth;
          if (p == ">") --depth;
          if (p == ">>") depth -= 2;
          if (depth <= 0 && j > i + 1) break;
          if (p == ";" || p == "{") break;  // Malformed; bail.
        }
        name_idx = j + 1;
      } else {
        continue;
      }
      const Token& name = file.Code(name_idx);
      if (name.kind != TokKind::kIdent ||
          !file.CodeIs(name_idx + 1, TokKind::kPunct, "(")) {
        continue;
      }
      // PascalCase filter: repo functions are PascalCase; this skips
      // local-variable declarations like `Status s(...)`.
      if (std::isupper(static_cast<unsigned char>(name.text[0])) == 0) {
        continue;
      }
      returns_status_.insert(name.text);
    }
  }

  void Check(const SourceFile& file, Reporter& reporter) override {
    if (!PathContains(file.path, "src/") &&
        !PathContains(file.path, "examples/")) {
      return;
    }
    for (int i = 0; i < file.NumCode(); ++i) {
      CheckVoidCast(file, i, reporter);
      CheckCommaEscape(file, i, reporter);
    }
  }

 private:
  /// `(void)expr` and `static_cast<void>(expr)` where expr's first call
  /// is to a Status/Result-returning function.
  void CheckVoidCast(const SourceFile& file, int i, Reporter& reporter) {
    int expr_start = -1;
    if (file.CodeIs(i, TokKind::kPunct, "(") &&
        file.CodeIs(i + 1, TokKind::kIdent, "void") &&
        file.CodeIs(i + 2, TokKind::kPunct, ")")) {
      expr_start = i + 3;
    } else if (file.CodeIs(i, TokKind::kIdent, "static_cast") &&
               file.CodeIs(i + 1, "<") &&
               file.CodeIs(i + 2, TokKind::kIdent, "void") &&
               file.CodeIs(i + 3, ">") && file.CodeIs(i + 4, "(")) {
      expr_start = i + 5;
    }
    if (expr_start < 0) return;
    // Walk the member-access chain to the first call.
    std::string callee;
    for (int j = expr_start; j < file.NumCode(); ++j) {
      const Token& t = file.Code(j);
      if (t.kind == TokKind::kIdent) {
        callee = t.text;
        continue;
      }
      if (t.kind == TokKind::kPunct &&
          (t.text == "::" || t.text == "." || t.text == "->" ||
           t.text == "*")) {
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "(" && !callee.empty()) {
        if (returns_status_.count(callee) != 0) {
          reporter.Report(
              file, file.Code(i).line, id(),
              "'(void)' discards the Status/Result returned by '" + callee +
                  "' — handle the error, or suppress with an explicit "
                  "rationale (adaskip-analyze: allow(status-must-use))");
        }
        return;
      }
      return;  // Not a plain call chain.
    }
  }

  /// `Foo(...), rest` at statement level (or directly inside an
  /// if/while/for/switch condition): the comma operator discards the
  /// call's value and [[nodiscard]] cannot see through it.
  void CheckCommaEscape(const SourceFile& file, int i, Reporter& reporter) {
    if (!IdentThenParen(file, i)) return;
    const std::string& callee = file.Code(i).text;
    if (returns_status_.count(callee) == 0) return;
    const Token& prev = file.Code(i - 1);
    bool stmt_start = i == 0;
    if (prev.kind == TokKind::kPunct &&
        (prev.text == ";" || prev.text == "{" || prev.text == "}" ||
         prev.text == ":")) {
      stmt_start = true;
    }
    if (prev.kind == TokKind::kIdent &&
        (prev.text == "else" || prev.text == "do")) {
      stmt_start = true;
    }
    bool in_condition = false;
    if (prev.kind == TokKind::kPunct && prev.text == "(") {
      const Token& kw = file.Code(i - 2);
      in_condition = kw.kind == TokKind::kIdent &&
                     (kw.text == "if" || kw.text == "while" ||
                      kw.text == "for" || kw.text == "switch");
    }
    if (!stmt_start && !in_condition) return;
    const int close = MatchParen(file, i + 1);
    if (close < 0 || !file.CodeIs(close + 1, TokKind::kPunct, ",")) return;
    reporter.Report(
        file, file.Code(i).line, id(),
        "comma operator discards the Status/Result returned by '" + callee +
            "' — [[nodiscard]] cannot see through this escape; handle the "
            "error");
  }

  std::set<std::string> returns_status_;
};

}  // namespace

void AddContractRules(std::vector<std::unique_ptr<Rule>>* rules) {
  rules->push_back(std::make_unique<SkipIndexOverridesRule>());
  rules->push_back(std::make_unique<ExecStatsSyncRule>());
  rules->push_back(std::make_unique<SerializeBinaryPairRule>());
  rules->push_back(std::make_unique<IndexKindExhaustiveRule>());
  rules->push_back(std::make_unique<StatusMustUseRule>());
}

}  // namespace adaskip_analyze
