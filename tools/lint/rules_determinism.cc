// Determinism rules. The system's headline invariant is bit-identical
// results and telemetry across serial/parallel execution, scalar/SIMD
// kernels, journal replay, and crash restore. Tests defend it at one
// thread count and one CPU; these rules defend it against the three
// classic nondeterminism sources a diff can't see: hash-map iteration
// order, wall-clock reads, and unseeded randomness — plus the subtler
// one, ordering on raw pointer values.

#include "rules.h"

namespace adaskip_analyze {

namespace {

bool InLibrary(const SourceFile& file) {
  return PathContains(file.path, "src/");
}

/// det-unordered-container: std::unordered_* iteration order depends on
/// hashing, bucket counts, and insertion history — none of which are
/// part of the replay/restore contract. One `for (auto& kv : umap)`
/// feeding RenderText, the journal, or a result set breaks bit-identity
/// in a way no single-configuration test can catch.
class DetUnorderedContainerRule : public Rule {
 public:
  std::string_view id() const override { return "det-unordered-container"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    if (!InLibrary(file)) return;
    static constexpr std::string_view kBanned[] = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    for (int i = 0; i < file.NumCode(); ++i) {
      const Token& t = file.Code(i);
      if (t.kind != TokKind::kIdent) continue;
      for (std::string_view banned : kBanned) {
        if (t.text == banned) {
          reporter.Report(
              file, t.line, id(),
              "std::" + t.text +
                  " in library code — hash-map iteration order is "
                  "nondeterministic and leaks into telemetry/journal/"
                  "results; use std::map (or sort before iterating)");
          break;
        }
      }
    }
    for (const Token& t : file.tokens) {
      if (t.kind != TokKind::kPreproc) continue;
      const std::string operand = IncludeOperand(t.text);
      if (operand == "unordered_map" || operand == "unordered_set") {
        reporter.Report(file, t.line, id(),
                        "#include <" + operand +
                            "> in library code — nothing deterministic "
                            "comes out of it; use <map> / <set>");
      }
    }
  }
};

/// det-wall-clock: time must flow through the injectable seams
/// (util::MonotonicNanos / the Stopwatch clock in util/, and the obs
/// timestamp plumbing), never be read inline. An inline clock read in
/// engine code timestamps journal events differently on every run and
/// desynchronizes replay.
class DetWallClockRule : public Rule {
 public:
  std::string_view id() const override { return "det-wall-clock"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    if (!InLibrary(file)) return;
    if (PathContains(file.path, "util/") || PathContains(file.path, "obs/")) {
      return;  // The blessed clock seams live here.
    }
    static constexpr std::string_view kClockTypes[] = {
        "system_clock", "steady_clock", "high_resolution_clock"};
    static constexpr std::string_view kClockCalls[] = {
        "time",          "clock",     "gettimeofday", "clock_gettime",
        "localtime",     "gmtime",    "mktime",       "ctime",
        "strftime",      "timespec_get"};
    for (int i = 0; i < file.NumCode(); ++i) {
      const Token& t = file.Code(i);
      if (t.kind != TokKind::kIdent) continue;
      for (std::string_view type : kClockTypes) {
        if (t.text == type) {
          reporter.Report(
              file, t.line, id(),
              "std::chrono::" + t.text +
                  " outside util//obs/ — read time through "
                  "util::MonotonicNanos (util/stopwatch.h) so replay and "
                  "telemetry stay deterministic behind one seam");
          break;
        }
      }
      if (!file.CodeIs(i + 1, TokKind::kPunct, "(")) continue;
      // Qualified calls (std::time) always count. Bare names only when
      // they cannot be a member access (`ev.time()`) or a declaration
      // (`int64_t time() const`): the previous token must be neither an
      // accessor nor an identifier.
      const Token& prev = file.Code(i - 1);
      const bool qualified = prev.kind == TokKind::kPunct && prev.text == "::";
      const bool decl_or_member =
          prev.kind == TokKind::kIdent ||
          (prev.kind == TokKind::kPunct &&
           (prev.text == "." || prev.text == "->" || prev.text == "~"));
      if (!qualified && decl_or_member) continue;
      for (std::string_view call : kClockCalls) {
        if (t.text == call) {
          reporter.Report(file, t.line, id(),
                          "wall-clock call '" + t.text +
                              "(...)' outside util//obs/ — route time "
                              "through util::MonotonicNanos");
          break;
        }
      }
    }
  }
};

/// det-rng: randomness is a workload-generation concern, and every
/// engine there is seeded from the workload config. rand()/
/// std::random_device anywhere else (or engine construction outside the
/// seam) makes runs unrepeatable.
class DetRngRule : public Rule {
 public:
  std::string_view id() const override { return "det-rng"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    if (!InLibrary(file)) return;
    if (PathContains(file.path, "util/") ||
        PathContains(file.path, "workload/")) {
      return;  // The seeded-RNG seam.
    }
    static constexpr std::string_view kEngines[] = {
        "random_device",  "mt19937",        "mt19937_64",
        "minstd_rand",    "minstd_rand0",   "default_random_engine",
        "knuth_b",        "ranlux24",       "ranlux48",
        "ranlux24_base",  "ranlux48_base"};
    static constexpr std::string_view kCalls[] = {"rand",    "srand",
                                                  "random",  "rand_r",
                                                  "drand48", "lrand48"};
    for (int i = 0; i < file.NumCode(); ++i) {
      const Token& t = file.Code(i);
      if (t.kind != TokKind::kIdent) continue;
      for (std::string_view engine : kEngines) {
        if (t.text == engine) {
          reporter.Report(
              file, t.line, id(),
              "std::" + t.text +
                  " outside workload/ — randomness lives behind the seeded "
                  "workload RNG seam; pass values in, don't generate them");
          break;
        }
      }
      if (!file.CodeIs(i + 1, TokKind::kPunct, "(")) continue;
      // Same qualification logic as det-wall-clock: qualified calls
      // always count, bare names only when they cannot be a member
      // access or a declaration.
      const Token& prev = file.Code(i - 1);
      const bool qualified = prev.kind == TokKind::kPunct && prev.text == "::";
      const bool decl_or_member =
          prev.kind == TokKind::kIdent ||
          (prev.kind == TokKind::kPunct &&
           (prev.text == "." || prev.text == "->" || prev.text == "~"));
      if (!qualified && decl_or_member) continue;
      for (std::string_view call : kCalls) {
        if (t.text == call) {
          reporter.Report(file, t.line, id(),
                          "'" + t.text +
                              "(...)' outside workload/ — unseeded C RNG "
                              "makes runs unrepeatable; use the seeded "
                              "workload generators");
          break;
        }
      }
    }
  }
};

/// det-pointer-order: an ordered container or comparator keyed on a raw
/// pointer orders by allocation address, which varies run to run (ASLR,
/// allocator state). Key on a stable identity (name, index) instead.
class DetPointerOrderRule : public Rule {
 public:
  std::string_view id() const override { return "det-pointer-order"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    if (!InLibrary(file)) return;
    static constexpr std::string_view kOrdered[] = {
        "set", "map", "multiset", "multimap", "less", "greater"};
    for (int i = 0; i + 1 < file.NumCode(); ++i) {
      const Token& t = file.Code(i);
      if (t.kind != TokKind::kIdent || !file.CodeIs(i + 1, "<")) continue;
      bool ordered = false;
      for (std::string_view name : kOrdered) {
        if (t.text == name) ordered = true;
      }
      if (!ordered) continue;
      // First template argument: tokens until the ',' or '>' that
      // brings the angle depth back to this list's level.
      int depth = 1;
      const Token* last = nullptr;
      for (int j = i + 2; j < file.NumCode(); ++j) {
        const Token& a = file.Code(j);
        if (a.kind == TokKind::kPunct) {
          if (a.text == "<") ++depth;
          if (a.text == ">") --depth;
          if (a.text == ">>") depth -= 2;
          if ((a.text == "," && depth == 1) || depth <= 0) break;
          if (a.text == ";" || a.text == "{" || a.text == "(") break;
        }
        last = &a;
      }
      if (last != nullptr && last->kind == TokKind::kPunct &&
          last->text == "*") {
        reporter.Report(
            file, t.line, id(),
            "std::" + t.text +
                " keyed on a raw pointer — iteration order follows "
                "allocation addresses, which change every run; key on a "
                "stable identity (name, index, id) instead");
      }
    }
  }
};

}  // namespace

void AddDeterminismRules(std::vector<std::unique_ptr<Rule>>* rules) {
  rules->push_back(std::make_unique<DetUnorderedContainerRule>());
  rules->push_back(std::make_unique<DetWallClockRule>());
  rules->push_back(std::make_unique<DetRngRule>());
  rules->push_back(std::make_unique<DetPointerOrderRule>());
}

}  // namespace adaskip_analyze
