// layering-dag: the subsystem dependency architecture, enforced from
// `#include "adaskip/..."` edges instead of convention.
//
// The declared normative order is a linear backbone — each subsystem
// may include itself and anything earlier:
//
//   util → persist → obs → storage → scan → skipping → adaptive
//        → engine → workload
//
// Rationale for the two placements that differ from a naive reading of
// the runtime dataflow:
//   - persist sits LOW (right after util): persist/ holds only the
//     framed binary-IO primitives (Sink/Source, CRC framing), which the
//     serialization methods of obs/storage/skipping/adaptive all
//     implement against. Checkpoint/restore ORCHESTRATION lives in
//     engine/session_persist.cc, at the top where it belongs.
//   - scan sits between storage and skipping: predicates and kernels
//     are vocabulary types consumed by every index implementation and
//     by the adaptive layer.
//
// The adjacency is declared explicitly below and verified acyclic at
// construction (a cycle in the DECLARATION is a programming error and
// throws); observed back-edges in the tree are findings. The
// accumulated graph is exported as a DOT artifact (--dot=) with
// violations highlighted, making the check's output double as the
// architecture diagram in DESIGN.md.

#include <map>
#include <stdexcept>

#include "rules.h"

namespace adaskip_analyze {

namespace {

/// Subsystem of a library path ("src/adaskip/<sub>/..." or an include
/// operand "adaskip/<sub>/..."), or "" if the path is not library code.
std::string SubsystemOf(std::string_view path, std::string_view prefix) {
  const size_t at = path.find(prefix);
  if (at == std::string_view::npos) return "";
  const size_t begin = at + prefix.size();
  const size_t end = path.find('/', begin);
  if (end == std::string_view::npos) return "";
  return std::string(path.substr(begin, end - begin));
}

}  // namespace

const std::vector<std::string>& LayeringDagRule::DeclaredOrder() {
  static const std::vector<std::string> kOrder = {
      "util",     "persist",  "obs",    "storage",  "scan",
      "skipping", "adaptive", "engine", "workload"};
  return kOrder;
}

LayeringDagRule::LayeringDagRule() {
  // Self-check: the declared adjacency (each subsystem depends on
  // everything earlier) must be a DAG. Trivially true for a linear
  // order, but verified generically so a future sparse adjacency edit
  // cannot silently declare a cycle the enforcement would then bless.
  const std::vector<std::string>& order = DeclaredOrder();
  std::map<std::string, std::vector<std::string>> deps;
  for (size_t i = 0; i < order.size(); ++i) {
    for (size_t j = 0; j < i; ++j) deps[order[i]].push_back(order[j]);
  }
  // Kahn's algorithm over the declared edges.
  std::map<std::string, int> in_degree;
  for (const std::string& sub : order) in_degree[sub] = 0;
  for (const auto& [sub, targets] : deps) {
    (void)sub;
    for (const std::string& target : targets) ++in_degree[target];
  }
  std::vector<std::string> ready;
  for (const auto& [sub, degree] : in_degree) {
    if (degree == 0) ready.push_back(sub);
  }
  size_t visited = 0;
  while (!ready.empty()) {
    const std::string sub = ready.back();
    ready.pop_back();
    ++visited;
    for (const std::string& target : deps[sub]) {
      if (--in_degree[target] == 0) ready.push_back(target);
    }
  }
  if (visited != order.size()) {
    throw std::logic_error("layering-dag: declared adjacency has a cycle");
  }
}

void LayeringDagRule::RecordEdge(const std::string& from,
                                 const std::string& to, bool violation) {
  for (const Edge& e : edges_) {
    if (e.from == from && e.to == to) return;
  }
  edges_.push_back({from, to, violation});
}

void LayeringDagRule::Check(const SourceFile& file, Reporter& reporter) {
  const std::string from = SubsystemOf(file.path, "src/adaskip/");
  if (from.empty()) return;
  const std::vector<std::string>& order = DeclaredOrder();
  int from_rank = -1;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == from) from_rank = static_cast<int>(i);
  }
  for (const Token& t : file.tokens) {
    if (t.kind != TokKind::kPreproc) continue;
    const std::string operand = IncludeOperand(t.text);
    const std::string to = SubsystemOf(operand, "adaskip/");
    if (to.empty() || to == from) continue;
    int to_rank = -1;
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == to) to_rank = static_cast<int>(i);
    }
    if (from_rank < 0) {
      reporter.Report(file, t.line, id(),
                      "file is in unknown subsystem '" + from +
                          "' — add it to the declared layering order "
                          "(rules_layering.cc) or move it");
      RecordEdge(from, to, /*violation=*/true);
      continue;
    }
    if (to_rank < 0) {
      reporter.Report(file, t.line, id(),
                      "#include of unknown subsystem 'adaskip/" + to +
                          "/' — add it to the declared layering order "
                          "(rules_layering.cc) or fix the include");
      RecordEdge(from, to, /*violation=*/true);
      continue;
    }
    const bool violation = to_rank > from_rank;
    RecordEdge(from, to, violation);
    if (violation) {
      reporter.Report(
          file, t.line, id(),
          "layering violation: '" + from + "' may not depend on '" + to +
              "' (the declared order is util → persist → obs → storage → "
              "scan → skipping → adaptive → engine → workload; dependencies "
              "point left)");
    }
  }
}

}  // namespace adaskip_analyze
