// Style/ownership rules ported from the stripped-lexical adaskip_lint
// onto the tokenizer. Semantics and message strings are preserved; the
// matching is now structural (real tokens, so string literals and
// comments can never false-positive, and `std :: thread` split across
// whitespace matches exactly like `std::thread`).

#include <cctype>

#include "rules.h"

namespace adaskip_analyze {

namespace {

bool IsConstishKeyword(const std::string& text) {
  // const, constexpr, consteval, constinit all make a static safe.
  return text.rfind("const", 0) == 0;
}

/// naked-new: no `new` / `delete` outside util/ — ownership goes
/// through std::unique_ptr / containers.
class NakedNewRule : public Rule {
 public:
  std::string_view id() const override { return "naked-new"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    if (PathContains(file.path, "util/")) return;
    for (int i = 0; i < file.NumCode(); ++i) {
      const Token& t = file.Code(i);
      if (t.kind != TokKind::kIdent) continue;
      if (t.text == "new") {
        reporter.Report(file, t.line, id(),
                        "naked 'new' outside util/ — use std::make_unique or "
                        "a container");
      } else if (t.text == "delete" && !file.CodeIs(i - 1, "=")) {
        reporter.Report(file, t.line, id(),
                        "naked 'delete' outside util/ — ownership belongs to "
                        "std::unique_ptr");
      }
    }
  }
};

/// raw-thread: no std::thread spawned outside util/ (static-member
/// access such as std::thread::hardware_concurrency is fine).
class RawThreadRule : public Rule {
 public:
  std::string_view id() const override { return "raw-thread"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    if (PathContains(file.path, "util/")) return;
    for (int i = 0; i + 2 < file.NumCode(); ++i) {
      if (file.CodeIs(i, TokKind::kIdent, "std") && file.CodeIs(i + 1, "::") &&
          file.CodeIs(i + 2, TokKind::kIdent, "thread") &&
          !file.CodeIs(i + 3, "::")) {
        reporter.Report(file, file.Code(i).line, id(),
                        "std::thread outside util/ — parallel work goes "
                        "through ThreadPool");
      }
    }
  }
};

/// raw-sync-primitive: no raw standard-library synchronization types
/// outside util/ — the annotated Mutex/MutexLock/CondVar wrappers keep
/// Clang Thread Safety Analysis in the loop.
class RawSyncPrimitiveRule : public Rule {
 public:
  std::string_view id() const override { return "raw-sync-primitive"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    if (PathContains(file.path, "util/")) return;
    static constexpr std::string_view kSyncTypes[] = {
        "mutex",         "recursive_mutex",
        "shared_mutex",  "timed_mutex",
        "condition_variable", "condition_variable_any",
        "lock_guard",    "unique_lock",
        "scoped_lock",   "shared_lock"};
    for (int i = 0; i + 2 < file.NumCode(); ++i) {
      if (!file.CodeIs(i, TokKind::kIdent, "std") || !file.CodeIs(i + 1, "::")) {
        continue;
      }
      const Token& t = file.Code(i + 2);
      if (t.kind != TokKind::kIdent) continue;
      for (std::string_view sync : kSyncTypes) {
        if (t.text == sync) {
          reporter.Report(
              file, file.Code(i).line, id(),
              "raw std::" + t.text +
                  " outside util/ — use the annotated Mutex/MutexLock/CondVar "
                  "(thread_annotations.h) so Clang Thread Safety Analysis "
                  "sees the lock");
          break;
        }
      }
    }
  }
};

/// static-mutable-state: no non-const, non-atomic `static` variables in
/// library code outside util/.
class StaticMutableStateRule : public Rule {
 public:
  std::string_view id() const override { return "static-mutable-state"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    if (PathContains(file.path, "util/")) return;
    for (int i = 0; i < file.NumCode(); ++i) {
      if (!file.CodeIs(i, TokKind::kIdent, "static")) continue;
      // Scan the declaration statement: a `(` anywhere marks a function
      // declaration or a constructor call with per-call semantics the
      // line-based predecessor skipped too; const*/atomic/thread_local
      // make the static safe. A `{`/`}` before the `;` means this was a
      // function definition, not a variable.
      bool safe = false;
      bool is_decl = false;
      for (int j = i + 1; j < file.NumCode() && j < i + 64; ++j) {
        const Token& t = file.Code(j);
        if (t.kind == TokKind::kPunct &&
            (t.text == "(" || t.text == "{" || t.text == "}")) {
          safe = true;
          break;
        }
        if (t.kind == TokKind::kIdent &&
            (IsConstishKeyword(t.text) || t.text == "thread_local" ||
             t.text == "atomic")) {
          safe = true;
        }
        if (t.kind == TokKind::kPunct && t.text == ";") {
          is_decl = true;
          break;
        }
      }
      if (is_decl && !safe) {
        reporter.Report(
            file, file.Code(i).line, id(),
            "non-const, non-atomic static variable outside util/ — shared "
            "counters in executor code must be std::atomic or live in a "
            "class guarded by a Mutex");
      }
    }
  }
};

/// metric-registration: no direct registry calls outside obs/ —
/// instruments go through ADASKIP_METRIC_COUNTER / _HISTOGRAM.
class MetricRegistrationRule : public Rule {
 public:
  std::string_view id() const override { return "metric-registration"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    if (PathContains(file.path, "obs/")) return;
    for (int i = 0; i < file.NumCode(); ++i) {
      if (!IdentThenParen(file, i)) continue;
      const Token& t = file.Code(i);
      if (t.text != "RegisterCounter" && t.text != "RegisterHistogram") {
        continue;
      }
      reporter.Report(
          file, t.line, id(),
          "direct MetricsRegistry::" + t.text +
              " call outside obs/ — declare instruments with "
              "ADASKIP_METRIC_COUNTER / ADASKIP_METRIC_HISTOGRAM "
              "(obs/metrics.h) so they share the central naming scheme and "
              "compile out under ADASKIP_NO_METRICS");
    }
  }
};

/// metric-name-style: the metric name handed to an ADASKIP_METRIC_*
/// macro in library code must be one plain string literal of the form
/// `adaskip.<segment>.<segment>...` with lowercase snake_case segments.
/// The Prometheus exposition derives metric-family names from these
/// literals (dots become underscores), so the naming scheme is operator
/// API — and the CI inventory greps them, so computed names are opaque.
class MetricNameStyleRule : public Rule {
 public:
  std::string_view id() const override { return "metric-name-style"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    // Library-only: tests and benches declare scratch instruments.
    if (!PathContains(file.path, "src/")) return;
    for (int i = 0; i < file.NumCode(); ++i) {
      const Token& t = file.Code(i);
      if (t.kind != TokKind::kIdent ||
          t.text.rfind("ADASKIP_METRIC_", 0) != 0 ||
          !file.CodeIs(i + 1, "(")) {
        continue;
      }
      const int close = MatchParen(file, i + 1);
      if (close < 0) continue;
      // The name is the second macro argument: the token after the
      // first top-level comma of the invocation.
      int name_idx = -1;
      int depth = 0;
      for (int j = i + 1; j < close; ++j) {
        const Token& arg = file.Code(j);
        if (arg.kind != TokKind::kPunct) continue;
        if (arg.text == "(" || arg.text == "[" || arg.text == "{") ++depth;
        if (arg.text == ")" || arg.text == "]" || arg.text == "}") --depth;
        if (arg.text == "," && depth == 1) {
          name_idx = j + 1;
          break;
        }
      }
      if (name_idx < 0) continue;  // Arity misuse; the compiler's problem.
      const Token& name = file.Code(name_idx);
      if (name.kind != TokKind::kString) {
        reporter.Report(
            file, t.line, id(),
            "metric name passed to " + t.text + " is not one plain string "
                "literal — names are the operator-facing exposition "
                "inventory and must be greppable, not computed");
        continue;
      }
      const std::string spelled = Unquote(name.text);
      if (!ValidName(spelled)) {
        reporter.Report(
            file, t.line, id(),
            "metric name \"" + spelled + "\" violates the naming scheme — "
                "names are 'adaskip.'-prefixed lowercase snake_case "
                "segments separated by dots (like "
                "adaskip.server.queue_wait_nanos), so every family renders "
                "to a valid, predictable Prometheus name");
      }
    }
  }

 private:
  /// Strips the quotes (and any encoding prefix) off a string token.
  static std::string Unquote(const std::string& spelling) {
    const size_t open = spelling.find('"');
    if (open == std::string::npos || spelling.size() < open + 2) return "";
    return spelling.substr(open + 1, spelling.size() - open - 2);
  }

  static bool ValidSegment(std::string_view segment) {
    if (segment.empty()) return false;
    if (std::islower(static_cast<unsigned char>(segment[0])) == 0) {
      return false;
    }
    for (const char c : segment) {
      const auto u = static_cast<unsigned char>(c);
      if (std::islower(u) == 0 && std::isdigit(u) == 0 && c != '_') {
        return false;
      }
    }
    return true;
  }

  static bool ValidName(std::string_view name) {
    static constexpr std::string_view kPrefix = "adaskip.";
    if (name.rfind(kPrefix, 0) != 0) return false;
    std::string_view rest = name.substr(kPrefix.size());
    while (true) {
      const size_t dot = rest.find('.');
      if (!ValidSegment(rest.substr(0, dot))) return false;
      if (dot == std::string_view::npos) return true;
      rest = rest.substr(dot + 1);
    }
  }
};

/// journal-emission: no direct EventJournal::AppendEvent outside obs/ —
/// adaptation events go through ADASKIP_JOURNAL_EVENT.
class JournalEmissionRule : public Rule {
 public:
  std::string_view id() const override { return "journal-emission"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    if (PathContains(file.path, "obs/")) return;
    for (int i = 0; i < file.NumCode(); ++i) {
      if (!IdentThenParen(file, i)) continue;
      if (file.Code(i).text != "AppendEvent") continue;
      reporter.Report(
          file, file.Code(i).line, id(),
          "direct EventJournal::AppendEvent call outside obs/ — emit "
          "adaptation events with ADASKIP_JOURNAL_EVENT "
          "(obs/event_journal.h) so the null-journal guard and the replay "
          "contract are enforced at one macro");
    }
  }
};

/// raw-binary-io: no fopen/fwrite/fread or std::ios::binary streams
/// outside persist/ — binary artifacts go through FileSink/FileSource.
class RawBinaryIoRule : public Rule {
 public:
  std::string_view id() const override { return "raw-binary-io"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    if (PathContains(file.path, "persist/")) return;
    for (int i = 0; i < file.NumCode(); ++i) {
      const Token& t = file.Code(i);
      if (t.kind != TokKind::kIdent) continue;
      if ((t.text == "fopen" || t.text == "fwrite" || t.text == "fread") &&
          file.CodeIs(i + 1, TokKind::kPunct, "(")) {
        reporter.Report(
            file, t.line, id(),
            "raw '" + t.text +
                "' outside persist/ — binary artifacts go through "
                "persist::FileSink / FileSource so they carry the versioned "
                "header and per-block CRC framing Restore depends on");
      }
      if (t.text == "ios" && file.CodeIs(i + 1, "::") &&
          file.CodeIs(i + 2, TokKind::kIdent, "binary")) {
        reporter.Report(
            file, t.line, id(),
            "std::ios::binary stream outside persist/ — unframed binary "
            "files have no format version and no checksum; use "
            "persist::FileSink / FileSource (text-mode streams are fine)");
      }
    }
  }
};

/// simd-intrinsics: no intrinsics headers, _mm* calls, or __m### vector
/// types outside scan/simd/. The only ported rule that also inspects
/// preprocessor tokens: intrinsics can hide in `#include` operands and
/// macro bodies.
class SimdIntrinsicsRule : public Rule {
 public:
  std::string_view id() const override { return "simd-intrinsics"; }

  void Check(const SourceFile& file, Reporter& reporter) override {
    if (PathContains(file.path, "scan/simd/")) return;
    for (const Token& t : file.tokens) {
      if (t.kind == TokKind::kPreproc) {
        CheckPreproc(file, t, reporter);
      } else if (t.kind == TokKind::kIdent) {
        CheckWord(file, t.text, t.line, reporter);
      }
    }
  }

 private:
  static bool IsIntrinsicCall(std::string_view word) {
    // _mm_*, _mm256_*, _mm512_*
    if (word.rfind("_mm", 0) != 0) return false;
    size_t p = 3;
    while (p < word.size() &&
           std::isdigit(static_cast<unsigned char>(word[p])) != 0) {
      ++p;
    }
    return p + 1 < word.size() && word[p] == '_';
  }

  static bool IsVectorType(std::string_view word) {
    if (word.rfind("__m", 0) != 0) return false;
    std::string_view rest = word.substr(3);
    if (!rest.empty() && (rest.back() == 'i' || rest.back() == 'd')) {
      rest.remove_suffix(1);
    }
    return rest == "128" || rest == "256" || rest == "512";
  }

  void CheckWord(const SourceFile& file, const std::string& word, int line,
                 Reporter& reporter) {
    if (IsIntrinsicCall(word)) {
      reporter.Report(
          file, line, id(),
          "raw '" + word +
              "' intrinsic outside scan/simd/ — it bypasses the runtime "
              "CPU check, ADASKIP_FORCE_SCALAR, and the bit-identity "
              "equivalence tests; use the simd:: dispatch wrappers");
    } else if (IsVectorType(word)) {
      reporter.Report(file, line, id(),
                      "raw '" + word +
                          "' vector type outside scan/simd/ — keep "
                          "vector-register code behind the dispatch layer");
    }
  }

  void CheckPreproc(const SourceFile& file, const Token& t,
                    Reporter& reporter) {
    const std::string operand = IncludeOperand(t.text);
    if (!operand.empty()) {
      // <immintrin.h>, <x86intrin.h>, <emmintrin.h>, ...
      static constexpr std::string_view kSuffix = "intrin.h";
      if (operand.size() >= kSuffix.size() &&
          operand.compare(operand.size() - kSuffix.size(), kSuffix.size(),
                          kSuffix) == 0) {
        reporter.Report(
            file, t.line, id(),
            "intrinsics header outside scan/simd/ — SIMD goes through the "
            "simd:: dispatch wrappers (scan/simd/kernel_dispatch.h)");
      }
      return;
    }
    // Macro bodies: #define FAST(x) _mm256_add_epi32(...)
    ForEachWordInText(t.text, [&](std::string_view word) {
      CheckWord(file, std::string(word), t.line, reporter);
    });
  }
};

}  // namespace

void AddStyleRules(std::vector<std::unique_ptr<Rule>>* rules) {
  rules->push_back(std::make_unique<NakedNewRule>());
  rules->push_back(std::make_unique<RawThreadRule>());
  rules->push_back(std::make_unique<RawSyncPrimitiveRule>());
  rules->push_back(std::make_unique<StaticMutableStateRule>());
  rules->push_back(std::make_unique<MetricRegistrationRule>());
  rules->push_back(std::make_unique<MetricNameStyleRule>());
  rules->push_back(std::make_unique<JournalEmissionRule>());
  rules->push_back(std::make_unique<RawBinaryIoRule>());
  rules->push_back(std::make_unique<SimdIntrinsicsRule>());
}

}  // namespace adaskip_analyze
