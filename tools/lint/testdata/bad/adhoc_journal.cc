// Fixture for the journal-emission rule: adaptation events appended to
// the journal directly instead of through ADASKIP_JOURNAL_EVENT. Linted
// under a src/adaskip/adaptive/ label.

#include "adaskip/obs/event_journal.h"

namespace adaskip {

void RecordSplitBadly(obs::EventJournal* journal) {
  obs::JournalEvent event;
  event.kind = obs::EventKind::kZoneSplit;
  event.scope = "t.x";
  // BAD: direct append — skips the null-journal guard, so this crashes
  // the moment journaling is toggled off.
  journal->AppendEvent(std::move(event));
}

void RecordMergeBadly(obs::EventJournal& journal) {
  obs::JournalEvent event;
  event.kind = obs::EventKind::kZoneMerge;
  // BAD: same through a reference.
  journal.AppendEvent(std::move(event));
}

void RecordProperly(obs::EventJournal* journal) {
  obs::JournalEvent event;
  event.kind = obs::EventKind::kTailAbsorb;
  // GOOD: the macro is the blessed emission path.
  ADASKIP_JOURNAL_EVENT(journal, std::move(event));
}

}  // namespace adaskip
