// Fixture for the metric-registration rule: instruments declared by
// calling the registry directly instead of through the central
// ADASKIP_METRIC_* macros. Linted under a src/adaskip/engine/ label.

#include "adaskip/obs/metrics.h"

namespace adaskip {

void CountSomething() {
  // BAD: ad-hoc direct registration — private naming, never compiles out.
  adaskip::obs::MetricsRegistry::Global()
      .RegisterCounter("my.private.counter", "nobody can find this")
      .Increment();
}

void TimeSomething(int64_t nanos) {
  // BAD: same for histograms.
  obs::MetricsRegistry::Global()
      .RegisterHistogram("my.private.latency", "ad-hoc")
      .Observe(nanos);
}

void CountProperly() {
  // GOOD: the macro path is the blessed declaration point.
  ADASKIP_METRIC_COUNTER(events, "adaskip.fixture.events", "macro-declared");
  events.Increment();
}

}  // namespace adaskip
