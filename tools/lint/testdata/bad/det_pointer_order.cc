// Fixture for det-pointer-order: ordered containers keyed on raw
// pointer values, whose iteration order follows allocation addresses.
// Linted under the label src/adaskip/engine/det_pointer_order.cc.

#include <functional>
#include <map>
#include <set>
#include <string>

namespace adaskip {

class SkipIndex;

class IndexRoster {
 private:
  std::set<const SkipIndex*> live_;              // det-pointer-order
  std::map<SkipIndex*, int> probe_counts_;       // det-pointer-order
  std::less<SkipIndex*> by_address_;             // det-pointer-order

  // GOOD: keyed on a stable identity instead.
  std::map<std::string, SkipIndex*> by_name_;
  std::set<int> zone_ids_;
};

}  // namespace adaskip
