// Fixture for det-rng: randomness outside the seeded workload seam.
// Linted under the label src/adaskip/engine/det_rng.cc.

#include <cstdlib>
#include <random>

namespace adaskip {

int NondeterministicPick(int bound) {
  std::random_device entropy;            // det-rng (hardware entropy)
  std::mt19937 gen(entropy());           // det-rng (engine outside seam)
  return static_cast<int>(gen() % static_cast<unsigned>(bound));
}

int LegacyPick(int bound) {
  return std::rand() % bound;            // det-rng (unseeded C RNG)
}

}  // namespace adaskip
