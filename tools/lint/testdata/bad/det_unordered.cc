// Fixture for det-unordered-container: hash-map state in library code
// whose iteration order would leak into telemetry output. Linted under
// the label src/adaskip/engine/det_unordered.cc.

#include <string>
#include <unordered_map>  // det-unordered-container (include)
#include <unordered_set>  // det-unordered-container (include)

namespace adaskip {

class TelemetryCache {
 private:
  std::unordered_map<std::string, int> counts_;   // det-unordered-container
  std::unordered_set<std::string> seen_;          // det-unordered-container
};

}  // namespace adaskip
