// Fixture for det-wall-clock: inline clock reads outside the util/obs
// seams. Linted under the label src/adaskip/engine/det_wall_clock.cc.

#include <chrono>
#include <ctime>
#include <cstdint>

namespace adaskip {

int64_t StampNow() {
  // BAD: inline monotonic read — replay sees different timestamps.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

int64_t WallSeconds() {
  // BAD: wall clock, doubly nondeterministic.
  const auto at = std::chrono::system_clock::now();
  (void)at;
  return static_cast<int64_t>(std::time(nullptr));
}

struct Event {
  int64_t time() const { return 0; }
};

int64_t MemberNamedTimeIsFine(const Event& event) {
  // GOOD: member access, not the C library wall clock.
  return event.time();
}

}  // namespace adaskip
