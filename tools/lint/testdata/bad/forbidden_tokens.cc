// Fixture: forbidden-token violations, one per line group.
// Linted under the label src/adaskip/engine/forbidden_tokens.cc.

#include <mutex>
#include <thread>

namespace adaskip {

static int query_counter;  // static-mutable-state

void Launch() {
  int* leak = new int[32];          // naked-new (new)
  delete[] leak;                    // naked-new (delete)
  std::thread worker([] {});        // raw-thread
  worker.join();
}

class Racy {
 private:
  std::mutex mu_;                   // raw-sync-primitive
};

}  // namespace adaskip
