// Fixture for index-kind-exhaustive: an IndexKind enum whose dispatch
// sites drifted. IndexKindToString forgot kZoneMap, and the
// ValidateIndexOptions site does not exist at all. Linted under the
// label src/adaskip/adaptive/kind_exhaustive.cc.

#include <memory>
#include <string>

namespace adaskip {

class SkipIndex;

enum class IndexKind : int {
  kFullScan = 0,
  kZoneMap = 1,
};

const char* IndexKindToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kFullScan:
      return "full-scan";
    default:
      // BAD: kZoneMap stringifies as "?" — introspection drifted.
      return "?";
  }
}

std::unique_ptr<SkipIndex> MakeSkipIndex(IndexKind kind) {
  switch (kind) {
    case IndexKind::kFullScan:
      return nullptr;
    case IndexKind::kZoneMap:
      return nullptr;
  }
  return nullptr;
}

}  // namespace adaskip
