// Fixture for layering-dag: a util/ file reaching up into engine/ and
// into a subsystem that does not exist. Linted under the label
// src/adaskip/util/layering.cc.

#include "adaskip/engine/session.h"    // layering-dag (back-edge)
#include "adaskip/telepathy/psychic.h" // layering-dag (unknown subsystem)
#include "adaskip/util/status.h"       // fine: intra-subsystem

namespace adaskip {

void Helper() {}

}  // namespace adaskip
