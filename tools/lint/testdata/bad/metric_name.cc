// Fixture: metric-name-style violations — a name missing the adaskip.
// prefix, an uppercase segment, a dash where the scheme wants an
// underscore, and a computed (non-literal) name. The conforming
// declaration at the end adds no finding. Linted under
// src/adaskip/engine/metric_name.cc.

void RegisterFixtureMetrics(const char* dynamic_name) {
  ADASKIP_METRIC_COUNTER(unprefixed, "server.queries",
                         "Missing the adaskip. prefix");
  ADASKIP_METRIC_COUNTER(uppercase, "adaskip.Server.queries",
                         "Segment is not lowercase");
  ADASKIP_METRIC_HISTOGRAM(dashed, "adaskip.server.queue-wait",
                           "Dash instead of underscore");
  ADASKIP_METRIC_GAUGE(computed, dynamic_name,
                       "Name is not one plain string literal");
  ADASKIP_METRIC_COUNTER(fine, "adaskip.server.queries",
                         "Conforming name; no finding");
}
