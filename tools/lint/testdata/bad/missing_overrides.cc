// Fixture: SkipIndex subclasses that violate skip-index-overrides.
// Linted under the label src/adaskip/skipping/missing_overrides.cc.

namespace adaskip {

class SkipIndex;

// Missing BOTH overrides: two findings.
class BrokenIndex : public SkipIndex {
 public:
  int Probe() const { return 0; }

 private:
  int zones_ = 0;
};

// Has OnAppend but forgot Describe: one finding.
class HalfIndex final : public SkipIndex {
 public:
  void OnAppend(RowRange appended) override;

 private:
  int zones_ = 0;
};

}  // namespace adaskip
