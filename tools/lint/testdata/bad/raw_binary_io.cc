// Fixture: ad-hoc binary file I/O that bypasses the persist framing.
// Linted under the label src/adaskip/engine/raw_binary_io.cc.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace adaskip {

void DumpUnframed(const std::string& path, const std::vector<char>& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");       // raw-binary-io
  std::fwrite(bytes.data(), 1, bytes.size(), file);       // raw-binary-io
  std::fclose(file);
}

void SlurpUnframed(const std::string& path, std::vector<char>* bytes) {
  std::FILE* file = std::fopen(path.c_str(), "rb");       // raw-binary-io
  std::fread(bytes->data(), 1, bytes->size(), file);      // raw-binary-io
  std::fclose(file);
}

void StreamUnframed(const std::string& path) {
  std::ofstream out(path, std::ios::binary);              // raw-binary-io
}

// Text-mode streams (logs, JSON reports, CSV exports) are fine.
void WriteReport(const std::string& path, const std::string& doc) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  out << doc;
}

}  // namespace adaskip
