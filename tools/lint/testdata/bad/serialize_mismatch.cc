// Fixture: one-sided serialization contracts. Linted under the label
// src/adaskip/skipping/serialize_mismatch.cc.

#include <string>

namespace adaskip {

namespace persist {
class Sink;
class Source;
}  // namespace persist

class Status;

// serialize-binary-pair: writes snapshots nothing can read back.
class WriteOnlyIndex {
 public:
  Status SerializeBinary(persist::Sink& sink) const;
};

// serialize-binary-pair: expects bytes nothing can produce.
struct ReadOnlyState {
  Status DeserializeBinary(persist::Source& source);
};

// Both halves present: the contract every persistent type must meet.
class RoundTripIndex {
 public:
  Status SerializeBinary(persist::Sink& sink) const;
  Status DeserializeBinary(persist::Source& source);
};

// Types with no serialization surface at all are of course fine.
class Ephemeral {
 public:
  std::string Describe() const;
};

}  // namespace adaskip
