// Fixture: a ServerStats whose Record/Clear drifted from the fields —
// exec-stats-sync tracks the server accumulator exactly like
// WorkloadStats. Linted under src/adaskip/engine/server_stats_drift.cc.

#include <cstdint>

namespace adaskip {

class ServerStats {
 public:
  void Record(int64_t width);
  void Clear();

 private:
  int64_t submitted_ = 0;
  int64_t batches_ = 0;
  int64_t shed_ = 0;  // Added later; merge/reset never updated.
};

void ServerStats::Record(int64_t width) {
  submitted_ += width;
  ++batches_;
}

void ServerStats::Clear() {
  submitted_ = 0;
  batches_ = 0;
}

// Exposition drift: the registration site exports submitted and batches
// but never shed — a stat that exists only inside the accumulator is
// invisible to /metrics and to every dashboard built on it.
void RecordServerMetrics(int64_t submitted, int64_t batches) {
  (void)submitted;
  (void)batches;
}

}  // namespace adaskip
