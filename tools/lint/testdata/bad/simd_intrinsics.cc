// Fixture: a scan kernel hand-rolled with raw intrinsics outside
// scan/simd/ — exactly what the simd-intrinsics rule exists to catch.
// Expected findings when labelled under src/adaskip/engine/: one for the
// intrinsics header, one for the _mm256_loadu_si256 call, two for the
// __m256i uses; the suppressed line adds none. Zero findings under
// src/adaskip/scan/simd/.

#include <immintrin.h>

#include <cstdint>

namespace adaskip {

int SneakyMoveMask(const int32_t* data) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data));
  // adaskip-lint: allow(simd-intrinsics)
  const int lanes = _mm256_movemask_ps(_mm256_castsi256_ps(v));
  return lanes;
}

}  // namespace adaskip
