// Fixture: a WorkloadStats whose Record/Clear drifted from the fields —
// exec-stats-sync must flag the forgotten field in each method.
// Linted under the label src/adaskip/engine/stats_drift.cc.

#include <cstdint>

namespace adaskip {

class WorkloadStats {
 public:
  void Record(int64_t scanned);
  void Clear();

 private:
  int64_t num_queries_ = 0;
  int64_t rows_scanned_ = 0;
  int64_t probe_nanos_ = 0;  // Added later; merge/reset never updated.
};

void WorkloadStats::Record(int64_t scanned) {
  ++num_queries_;
  rows_scanned_ += scanned;
}

void WorkloadStats::Clear() {
  num_queries_ = 0;
  rows_scanned_ = 0;
}

}  // namespace adaskip
