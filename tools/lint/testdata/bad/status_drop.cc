// Fixture for status-must-use: the two discard escapes [[nodiscard]]
// cannot flag consistently across compilers. Linted under the label
// src/adaskip/engine/status_drop.cc.

namespace adaskip {

class Status {
 public:
  bool ok() const { return true; }
};

Status Flush();
Status CloseOutput();

void DropWithVoidCast() {
  (void)Flush();                  // status-must-use
}

void DropWithStaticCast() {
  static_cast<void>(CloseOutput());  // status-must-use
}

void DropWithComma() {
  Flush(), CloseOutput();         // status-must-use (comma escape)
}

void DropInCondition() {
  if (Flush(), true) {            // status-must-use (comma in condition)
  }
}

void HandledProperly() {
  // GOOD: the value is consumed.
  const Status status = Flush();
  if (!status.ok()) {
    return;
  }
}

}  // namespace adaskip
