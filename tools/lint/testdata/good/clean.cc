// Fixture: idioms every rule must accept.
// Linted under the label src/adaskip/engine/clean.cc.

#include <atomic>
#include <memory>
#include <thread>

#include "adaskip/util/thread_annotations.h"

namespace adaskip {

class SkipIndex;

// All five contract surfaces present (declaration-only is fine).
class GoodIndex final : public SkipIndex {
 public:
  void OnAppend(RowRange appended) override;
  std::string Describe() const override;
  size_t MemoryUsageBytes() const override;
  Status SerializeBinary(persist::Sink& sink) const override;
  Status DeserializeBinary(persist::Source& source) override;

  // Deleted functions are not naked deletes.
  GoodIndex(const GoodIndex&) = delete;
  GoodIndex& operator=(const GoodIndex&) = delete;
};

// Static-member access on std::thread is not thread spawning.
inline int DefaultThreads() {
  return static_cast<int>(std::thread::hardware_concurrency());
}

// const / constexpr / atomic statics are allowed.
static constexpr int kMorselRows = 4096;
static const char kName[] = "adaskip";
static std::atomic<int64_t> live_sessions{0};

// The annotated wrappers are the sanctioned primitives.
class Guarded {
 private:
  Mutex mu_;
  int64_t value_ ADASKIP_GUARDED_BY(mu_) = 0;
};

// An explicitly justified exception stays, with an audit trail:
// adaskip-lint: allow(raw-sync-primitive)
using InteropLock = std::unique_lock<std::mutex>;

// Tokens inside comments and strings never count: new delete std::thread
inline const char* Banner() {
  return "no new delete std::mutex here, R\"(nor raw strings)\"";
}

}  // namespace adaskip
