// Fixture: determinism-clean code that walks right up to each det-*
// rule without tripping it. Must produce ZERO findings under the label
// src/adaskip/engine/det_clean.cc.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace adaskip {

class SkipIndex;

struct Event {
  int64_t time() const { return 0; }  // Member named like the C call.
};

class DeterministicRoster {
 public:
  // Timestamps are passed IN through the seam, never read inline.
  void Observe(const Event& event, int64_t now_nanos) {
    last_seen_nanos_ = event.time() + now_nanos;
  }

 private:
  // Ordered containers keyed on stable identities.
  std::map<std::string, SkipIndex*> by_name_;
  std::set<int> zone_ids_;
  std::vector<const SkipIndex*> insertion_order_;  // Vectors are fine.
  int64_t last_seen_nanos_ = 0;
};

// "randomize"/"timer" as substrings must not trip ident matching.
void RandomizeNothing(int timer_id) { (void)timer_id; }

}  // namespace adaskip
