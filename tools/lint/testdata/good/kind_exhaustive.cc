// Fixture: an IndexKind whose dispatch sites are all present and all
// complete. Must produce ZERO findings under the label
// src/adaskip/adaptive/kind_exhaustive.cc.

#include <memory>

namespace adaskip {

class SkipIndex;
class Status { public: bool ok() const { return true; } };
struct IndexOptions {};

enum class IndexKind : int {
  kFullScan = 0,
  kZoneMap = 1,
};

const char* IndexKindToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kFullScan:
      return "full-scan";
    case IndexKind::kZoneMap:
      return "zone-map";
  }
  return "?";
}

std::unique_ptr<SkipIndex> MakeSkipIndex(IndexKind kind) {
  switch (kind) {
    case IndexKind::kFullScan:
      return nullptr;
    case IndexKind::kZoneMap:
      return nullptr;
  }
  return nullptr;
}

Status ValidateIndexOptions(IndexKind kind, const IndexOptions& options) {
  (void)options;
  switch (kind) {
    case IndexKind::kFullScan:
    case IndexKind::kZoneMap:
      return Status();
  }
  return Status();
}

}  // namespace adaskip
