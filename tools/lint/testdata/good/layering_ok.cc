// Fixture: an engine/ file depending only on subsystems earlier in the
// declared order — exactly how the DAG is meant to be used. Must
// produce ZERO findings under the label src/adaskip/engine/layering_ok.cc.

#include "adaskip/adaptive/index_manager.h"
#include "adaskip/obs/metrics.h"
#include "adaskip/persist/binary_io.h"
#include "adaskip/scan/predicate.h"
#include "adaskip/skipping/skip_index.h"
#include "adaskip/storage/column.h"
#include "adaskip/util/status.h"

namespace adaskip {

void Orchestrate() {}

}  // namespace adaskip
