// Fixture: Status/Result values that are all genuinely consumed — the
// status-must-use rule must stay quiet. Must produce ZERO findings
// under the label src/adaskip/engine/status_ok.cc.

namespace adaskip {

class Status {
 public:
  bool ok() const { return true; }
};

Status Flush();
Status CloseOutput();

Status PropagateDirectly() { return Flush(); }

void BranchOnIt() {
  const Status status = Flush();
  if (!status.ok()) {
    return;
  }
  if (const Status closed = CloseOutput(); closed.ok()) {
    return;
  }
}

// A void-returning function may be (void)-cast freely; only harvested
// Status/Result returners are protected.
void Touch();
void CastTheVoidOne() { (void)Touch(); }

}  // namespace adaskip
