// Second seeded-violation file for the CI self-check (see
// util/bad_layering.cc for the full rationale). The naked-new seed
// lives here, NOT next to the layering seed: the naked-new rule exempts
// util/ (where the low-level allocators legitimately live), and the
// layering back-edge needs a util/ file to be a violation at all. scan/
// gets neither exemption, so both style and determinism rules are
// proven live by this file.

namespace adaskip {

inline int* LeakyAlloc() { return new int(7); }

}  // namespace adaskip
