// Seeded violations for the analyzer's CI self-check: this tree is
// scanned with the same binary and flags as the real repo, and the run
// MUST fail (WILL_FAIL in ctest; `!` in the workflow). If the analyzer
// ever goes blind — a tokenizer regression, a rule accidentally
// disabled, path scoping broken — this file stops finding anything and
// the self-check turns red before a real violation can slip through.
//
// Three families are seeded on purpose:
//   layering-dag            — util/ reaching UP to engine/ (a back-edge)
//   det-unordered-container — hash-map iteration order in library code
//   naked-new               — in scan/bad_style.cc (util/ is exempt)

#include "adaskip/engine/session.h"

#include <unordered_map>

namespace adaskip {

inline int CountDistinct(const std::unordered_map<int, int>& m) {
  return static_cast<int>(m.size());
}

}  // namespace adaskip
