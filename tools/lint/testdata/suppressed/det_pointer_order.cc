// Fixture: every det-pointer-order violation from the bad twin,
// silenced. Must produce ZERO findings under the label
// src/adaskip/engine/det_pointer_order.cc.

#include <functional>
#include <map>
#include <set>

namespace adaskip {

class SkipIndex;

class IndexRoster {
 private:
  // Order never observed: used only for membership checks.
  // adaskip-analyze: allow(det-pointer-order)
  std::set<const SkipIndex*> live_;
  std::map<SkipIndex*, int> probe_counts_;  // adaskip-analyze: allow(det-pointer-order)
  std::less<SkipIndex*> by_address_;        // adaskip-analyze: allow(det-pointer-order)
};

}  // namespace adaskip
