// Fixture: every det-rng violation from the bad twin, silenced (legacy
// adaskip-lint spelling on one line to prove both spellings work).
// Must produce ZERO findings under src/adaskip/engine/det_rng.cc.

#include <cstdlib>
#include <random>

namespace adaskip {

int NondeterministicPick(int bound) {
  std::random_device entropy;   // adaskip-analyze: allow(det-rng)
  std::mt19937 gen(entropy());  // adaskip-lint: allow(det-rng)
  return static_cast<int>(gen() % static_cast<unsigned>(bound));
}

int LegacyPick(int bound) {
  return std::rand() % bound;   // adaskip-analyze: allow(det-rng)
}

}  // namespace adaskip
