// Fixture: every det-unordered-container violation from the bad twin,
// each silenced with a structured suppression. Must produce ZERO
// findings under the label src/adaskip/engine/det_unordered.cc.

#include <string>
#include <unordered_map>  // adaskip-analyze: allow(det-unordered-container)
#include <unordered_set>  // adaskip-analyze: allow(det-unordered-container)

namespace adaskip {

class TelemetryCache {
 private:
  // Iteration order never escapes: snapshots are sorted before render.
  // adaskip-analyze: allow(det-unordered-container)
  std::unordered_map<std::string, int> counts_;
  // adaskip-analyze: allow(det-unordered-container)
  std::unordered_set<std::string> seen_;
};

}  // namespace adaskip
