// Fixture: every det-wall-clock violation from the bad twin, silenced.
// Must produce ZERO findings under src/adaskip/engine/det_wall_clock.cc.

#include <chrono>
#include <ctime>
#include <cstdint>

namespace adaskip {

int64_t StampNow() {
  // adaskip-analyze: allow(det-wall-clock)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

int64_t WallSeconds() {
  const auto at = std::chrono::system_clock::now();  // adaskip-analyze: allow(det-wall-clock)
  (void)at;
  return static_cast<int64_t>(std::time(nullptr));  // adaskip-analyze: allow(det-wall-clock)
}

}  // namespace adaskip
