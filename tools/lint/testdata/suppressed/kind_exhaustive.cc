// Fixture: the index-kind-exhaustive violations from the bad twin,
// silenced. The missing-site finding lands on the enum declaration
// line; the missing-enumerator finding lands on the dispatch
// definition line. Must produce ZERO findings under the label
// src/adaskip/adaptive/kind_exhaustive.cc.

#include <memory>
#include <string>

namespace adaskip {

class SkipIndex;

// Validation is intentionally out of scope for this fixture.
// adaskip-analyze: allow(index-kind-exhaustive)
enum class IndexKind : int {
  kFullScan = 0,
  kZoneMap = 1,
};

// kZoneMap intentionally stringifies via the default arm here.
// adaskip-analyze: allow(index-kind-exhaustive)
const char* IndexKindToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kFullScan:
      return "full-scan";
    default:
      return "?";
  }
}

std::unique_ptr<SkipIndex> MakeSkipIndex(IndexKind kind) {
  switch (kind) {
    case IndexKind::kFullScan:
      return nullptr;
    case IndexKind::kZoneMap:
      return nullptr;
  }
  return nullptr;
}

}  // namespace adaskip
