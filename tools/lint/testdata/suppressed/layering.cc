// Fixture: the layering-dag violations from the bad twin, silenced.
// Must produce ZERO findings under src/adaskip/util/layering.cc.

#include "adaskip/engine/session.h"    // adaskip-analyze: allow(layering-dag)
#include "adaskip/telepathy/psychic.h" // adaskip-analyze: allow(layering-dag)
#include "adaskip/util/status.h"

namespace adaskip {

void Helper() {}

}  // namespace adaskip
