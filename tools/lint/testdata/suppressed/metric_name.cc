// Fixture: every metric-name-style violation carries a suppression, so
// the file analyzes clean. Mirrors bad/metric_name.cc.

void RegisterFixtureMetrics(const char* dynamic_name) {
  ADASKIP_METRIC_COUNTER(unprefixed, "server.queries", "x");  // adaskip-analyze: allow(metric-name-style)
  ADASKIP_METRIC_COUNTER(uppercase, "adaskip.Server.queries", "x");  // adaskip-analyze: allow(metric-name-style)
  ADASKIP_METRIC_HISTOGRAM(dashed, "adaskip.server.queue-wait", "x");  // adaskip-analyze: allow(metric-name-style)
  ADASKIP_METRIC_GAUGE(computed, dynamic_name, "x");  // adaskip-analyze: allow(metric-name-style)
}
