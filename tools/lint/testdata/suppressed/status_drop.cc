// Fixture: every status-must-use violation from the bad twin, silenced
// with a rationale. Must produce ZERO findings under the label
// src/adaskip/engine/status_drop.cc.

namespace adaskip {

class Status {
 public:
  bool ok() const { return true; }
};

Status Flush();
Status CloseOutput();

void DropWithVoidCast() {
  // Errors are sticky and surfaced by the next CloseOutput call.
  // adaskip-analyze: allow(status-must-use)
  (void)Flush();
}

void DropWithStaticCast() {
  static_cast<void>(CloseOutput());  // adaskip-analyze: allow(status-must-use)
}

void DropWithComma() {
  Flush(), CloseOutput();  // adaskip-analyze: allow(status-must-use)
}

void DropInCondition() {
  if (Flush(), true) {  // adaskip-analyze: allow(status-must-use)
  }
}

}  // namespace adaskip
