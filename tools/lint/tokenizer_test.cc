// Unit tests for the adaskip_analyze C++ tokenizer: the constructs a
// stripped-lexical scanner historically got wrong — raw strings,
// digraph-looking text inside strings, line continuations (including
// mid-identifier and inside directives), and comment/string nesting.

#include "cpp_tokenizer.h"

#include <gtest/gtest.h>

#include <vector>

namespace adaskip_analyze {
namespace {

std::vector<Token> Lex(std::string_view src) { return Tokenize(src); }

std::vector<Token> LexKind(std::string_view src, TokKind kind) {
  std::vector<Token> out;
  for (const Token& t : Tokenize(src)) {
    if (t.kind == kind) out.push_back(t);
  }
  return out;
}

TEST(TokenizerTest, BasicKindsAndPositions) {
  const auto tokens = Lex("int x = 42;\nreturn x;");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, TokKind::kIdent);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].col, 1);
  EXPECT_EQ(tokens[2].kind, TokKind::kPunct);
  EXPECT_EQ(tokens[2].text, "=");
  EXPECT_EQ(tokens[3].kind, TokKind::kNumber);
  EXPECT_EQ(tokens[3].text, "42");
  EXPECT_EQ(tokens[5].text, "return");
  EXPECT_EQ(tokens[5].line, 2);
}

TEST(TokenizerTest, MaximalMunchPunct) {
  const auto tokens = Lex("std::thread a<<=b; c<=>d; e->f;");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].text, "::");
  EXPECT_EQ(tokens[4].text, "<<=");
  bool spaceship = false;
  bool arrow = false;
  for (const Token& t : tokens) {
    if (t.text == "<=>") spaceship = true;
    if (t.text == "->") arrow = true;
  }
  EXPECT_TRUE(spaceship);
  EXPECT_TRUE(arrow);
}

TEST(TokenizerTest, RawStringsWithDelimiters) {
  const auto strings =
      LexKind("auto s = R\"(a \"quoted\" )b)\";", TokKind::kRawString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "R\"(a \"quoted\" )b)\"");

  // A custom delimiter keeps an embedded `)"` from closing the literal.
  const auto custom =
      LexKind("auto s = R\"xy(inner )\" still inside)xy\";",
              TokKind::kRawString);
  ASSERT_EQ(custom.size(), 1u);
  EXPECT_EQ(custom[0].text, "R\"xy(inner )\" still inside)xy\"");

  // Encoding prefixes fuse into the literal.
  const auto prefixed = LexKind("auto s = u8R\"(x)\";", TokKind::kRawString);
  ASSERT_EQ(prefixed.size(), 1u);
  EXPECT_EQ(prefixed[0].text, "u8R\"(x)\"");
}

TEST(TokenizerTest, MultiLineRawStringTracksEndLine) {
  const auto tokens = Lex("auto s = R\"(line one\nline two)\";\nint x;");
  const auto strings = LexKind("auto s = R\"(line one\nline two)\";\nint x;",
                               TokKind::kRawString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].line, 1);
  EXPECT_EQ(strings[0].end_line, 2);
  // The identifier after the literal lands on line 3.
  EXPECT_EQ(tokens.back().text, ";");
  bool found_x = false;
  for (const Token& t : tokens) {
    if (t.text == "x") {
      EXPECT_EQ(t.line, 3);
      found_x = true;
    }
  }
  EXPECT_TRUE(found_x);
}

TEST(TokenizerTest, DigraphsInsideStringsStayStrings) {
  const auto tokens = Lex("const char* s = \"<% %> <: :> %:\"; int x;");
  const auto strings =
      LexKind("const char* s = \"<% %> <: :> %:\"; int x;", TokKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "\"<% %> <: :> %:\"");
  // Nothing inside the literal leaked out as punctuation.
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kPunct) {
      EXPECT_NE(t.text, "<%");
      EXPECT_NE(t.text, "%");
    }
  }
}

TEST(TokenizerTest, LineContinuationInsideIdentifier) {
  // Backslash-newline splices mid-identifier: one token, line 1.
  const auto tokens = Lex("ab\\\ncd = 1;");
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokKind::kIdent);
  EXPECT_EQ(tokens[0].text, "abcd");
  EXPECT_EQ(tokens[0].line, 1);
}

TEST(TokenizerTest, LineContinuationInsideLineComment) {
  // A line comment ending in backslash swallows the next line too.
  const auto tokens = Lex("// part one \\\npart two\nint x;");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokKind::kLineComment);
  EXPECT_NE(tokens[0].text.find("part two"), std::string::npos);
  EXPECT_EQ(tokens[1].text, "int");
  EXPECT_EQ(tokens[1].line, 3);
}

TEST(TokenizerTest, PreprocessorDirectiveIsOneLogicalLine) {
  const auto tokens = Lex("#define ADD(a, b) \\\n  ((a) + (b))\nint x;");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokKind::kPreproc);
  // Continuation spliced: the macro body is part of the directive text.
  EXPECT_NE(tokens[0].text.find("((a) + (b))"), std::string::npos);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].end_line, 2);
  EXPECT_EQ(tokens[1].text, "int");
  EXPECT_EQ(tokens[1].line, 3);
}

TEST(TokenizerTest, PreprocessorKeepsTrailingCommentSeparate) {
  const auto tokens = Lex("#include <map> // adaskip-analyze: allow(x)\n");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokKind::kPreproc);
  EXPECT_EQ(tokens[0].text, "#include <map> ");
  EXPECT_EQ(tokens[1].kind, TokKind::kLineComment);
  EXPECT_NE(tokens[1].text.find("allow(x)"), std::string::npos);
}

TEST(TokenizerTest, HashMidLineIsNotADirective) {
  const auto tokens = Lex("int a = x # y;\n#define REAL 1\n");
  int preproc_count = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kPreproc) {
      ++preproc_count;
      EXPECT_EQ(t.text, "#define REAL 1");
    }
  }
  EXPECT_EQ(preproc_count, 1);
}

TEST(TokenizerTest, CommentLookalikesInsideStringsStayStrings) {
  const auto strings =
      LexKind("auto s = \"/* not a comment */ // nor this\";",
              TokKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "\"/* not a comment */ // nor this\"");
}

TEST(TokenizerTest, StringLookalikesInsideCommentsStayComments) {
  const auto tokens = Lex("/* \"quoted\" 'c' R\"(raw)\" */ int x;");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokKind::kBlockComment);
  EXPECT_EQ(tokens[1].text, "int");
  const auto strings =
      LexKind("/* \"quoted\" 'c' R\"(raw)\" */ int x;", TokKind::kString);
  EXPECT_TRUE(strings.empty());
}

TEST(TokenizerTest, DigitSeparatorsAndCharLiterals) {
  const auto tokens = Lex("int64_t n = 1'000'000; char c = 'x';");
  const auto numbers =
      LexKind("int64_t n = 1'000'000; char c = 'x';", TokKind::kNumber);
  ASSERT_EQ(numbers.size(), 1u);
  EXPECT_EQ(numbers[0].text, "1'000'000");
  const auto chars =
      LexKind("int64_t n = 1'000'000; char c = 'x';", TokKind::kCharLit);
  ASSERT_EQ(chars.size(), 1u);
  EXPECT_EQ(chars[0].text, "'x'");
  EXPECT_EQ(tokens.back().text, ";");
}

TEST(TokenizerTest, ExponentSignsStayInOneNumber) {
  const auto numbers = LexKind("double d = 1.5e-3;", TokKind::kNumber);
  ASSERT_EQ(numbers.size(), 1u);
  EXPECT_EQ(numbers[0].text, "1.5e-3");
}

TEST(TokenizerTest, StringEncodingPrefixes) {
  const auto strings = LexKind("auto a = L\"wide\"; auto b = u8\"utf\";",
                               TokKind::kString);
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_EQ(strings[0].text, "L\"wide\"");
  EXPECT_EQ(strings[1].text, "u8\"utf\"");
}

TEST(TokenizerTest, UnterminatedConstructsDoNotCrash) {
  EXPECT_FALSE(Lex("auto s = \"never closed").empty());
  EXPECT_FALSE(Lex("/* never closed").empty());
  EXPECT_FALSE(Lex("auto s = R\"(never closed").empty());
  EXPECT_TRUE(Lex("").empty());
  EXPECT_FALSE(Lex("#define TRAILING \\").empty());
}

TEST(TokenizerTest, BlockCommentSpanningLinesKeepsDirectiveDetection) {
  // The hash after a multi-line block comment is still line-start.
  const auto tokens = Lex("/* one\ntwo */ #include \"x.h\"\n");
  bool preproc = false;
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kPreproc) preproc = true;
  }
  EXPECT_TRUE(preproc);
}

}  // namespace
}  // namespace adaskip_analyze
