#include "promcheck.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <set>

namespace adaskip_promcheck {

namespace {

bool IsMetricNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':';
}

bool IsMetricNameChar(char c) {
  return IsMetricNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

bool IsLabelNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsLabelNameChar(char c) {
  return IsLabelNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

bool ValidMetricName(std::string_view name) {
  if (name.empty() || !IsMetricNameStart(name[0])) return false;
  for (const char c : name) {
    if (!IsMetricNameChar(c)) return false;
  }
  return true;
}

/// Parses a Prometheus float: ordinary strtod syntax plus the literal
/// +Inf / -Inf / Inf / NaN spellings.
std::optional<double> ParseValue(std::string_view text) {
  if (text == "+Inf" || text == "Inf") {
    return std::numeric_limits<double>::infinity();
  }
  if (text == "-Inf") return -std::numeric_limits<double>::infinity();
  if (text == "NaN") return std::nan("");
  const std::string owned(text);
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (end == owned.c_str() || *end != '\0') return std::nullopt;
  return value;
}

struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

/// One metric family's accumulated state across the document.
struct Family {
  bool has_help = false;
  bool has_type = false;
  std::string type = "untyped";
  int type_line = 0;
  bool has_samples = false;
  bool closed = false;  // A different family's sample has appeared since.
  // Histogram series, in order of appearance.
  std::vector<std::pair<std::string, double>> buckets;  // (le, value)
  std::optional<double> sum;
  std::optional<double> count;
  int first_sample_line = 0;
};

class Validator {
 public:
  std::vector<Issue> Run(std::string_view text) {
    int line_no = 0;
    size_t pos = 0;
    while (pos <= text.size()) {
      const size_t nl = text.find('\n', pos);
      std::string_view line = text.substr(
          pos, nl == std::string_view::npos ? std::string_view::npos
                                            : nl - pos);
      ++line_no;
      if (!(nl == std::string_view::npos && line.empty())) {
        CheckLine(line, line_no);
      }
      if (nl == std::string_view::npos) break;
      pos = nl + 1;
    }
    FinishFamilies();
    if (total_samples_ == 0) {
      issues_.push_back({0, "document contains no samples — the scraped "
                            "process exported nothing"});
    }
    return std::move(issues_);
  }

 private:
  void Report(int line, std::string message) {
    issues_.push_back({line, std::move(message)});
  }

  void CheckLine(std::string_view line, int line_no) {
    if (line.empty()) return;
    if (line.back() == '\r') {
      Report(line_no, "carriage return — the exposition format is LF-only");
      return;
    }
    if (line[0] == '#') {
      CheckComment(line, line_no);
      return;
    }
    CheckSample(line, line_no);
  }

  static std::string_view TakeWord(std::string_view& rest) {
    size_t i = 0;
    while (i < rest.size() && rest[i] != ' ') ++i;
    const std::string_view word = rest.substr(0, i);
    while (i < rest.size() && rest[i] == ' ') ++i;
    rest = rest.substr(i);
    return word;
  }

  void CheckComment(std::string_view line, int line_no) {
    std::string_view rest = line.substr(1);
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    const std::string_view keyword = TakeWord(rest);
    if (keyword != "HELP" && keyword != "TYPE") return;  // Free comment.
    const std::string name(TakeWord(rest));
    if (!ValidMetricName(name)) {
      Report(line_no, "# " + std::string(keyword) +
                          " names an invalid metric '" + name + "'");
      return;
    }
    Family& family = families_[name];
    if (keyword == "HELP") {
      if (family.has_help) {
        Report(line_no, "duplicate # HELP for metric '" + name + "'");
      }
      family.has_help = true;
      return;
    }
    static const std::set<std::string_view> kTypes = {
        "counter", "gauge", "histogram", "summary", "untyped"};
    const std::string type(TakeWord(rest));
    if (kTypes.count(type) == 0) {
      Report(line_no, "# TYPE for '" + name + "' names unknown type '" +
                          type + "'");
    }
    if (family.has_type) {
      Report(line_no, "duplicate # TYPE for metric '" + name + "'");
    }
    if (family.has_samples) {
      Report(line_no, "# TYPE for '" + name +
                          "' appears after the family's samples — metadata "
                          "must precede them");
    }
    family.has_type = true;
    family.type = type;
    family.type_line = line_no;
  }

  /// Parses `name{labels} value [timestamp]`, reporting charset and
  /// structure issues, and folds the sample into its family.
  void CheckSample(std::string_view line, int line_no) {
    size_t i = 0;
    while (i < line.size() && IsMetricNameChar(line[i])) ++i;
    const std::string name(line.substr(0, i));
    if (!ValidMetricName(name)) {
      Report(line_no, "sample line does not start with a valid metric name");
      return;
    }
    Sample sample;
    sample.name = name;
    if (i < line.size() && line[i] == '{') {
      if (!ParseLabels(line, &i, &sample, line_no)) return;
    }
    if (i >= line.size() || line[i] != ' ') {
      Report(line_no, "expected ' ' before the value of '" + name + "'");
      return;
    }
    while (i < line.size() && line[i] == ' ') ++i;
    std::string_view rest = line.substr(i);
    const std::string_view value_text = TakeWord(rest);
    const std::optional<double> value = ParseValue(value_text);
    if (!value.has_value()) {
      Report(line_no, "value '" + std::string(value_text) + "' of '" + name +
                          "' is not a valid Prometheus float");
      return;
    }
    sample.value = *value;
    if (!rest.empty()) {
      // Optional timestamp: integer milliseconds.
      const std::string_view ts = TakeWord(rest);
      bool ok = !ts.empty();
      for (size_t j = 0; j < ts.size(); ++j) {
        if (j == 0 && (ts[j] == '-' || ts[j] == '+')) continue;
        if (std::isdigit(static_cast<unsigned char>(ts[j])) == 0) ok = false;
      }
      if (!ok || !rest.empty()) {
        Report(line_no, "trailing garbage after the value of '" + name + "'");
        return;
      }
    }
    ++total_samples_;
    Record(sample, line_no);
  }

  bool ParseLabels(std::string_view line, size_t* pos, Sample* sample,
                   int line_no) {
    size_t i = *pos + 1;  // Past '{'.
    while (true) {
      if (i < line.size() && line[i] == '}') break;  // Also accepts {}.
      size_t start = i;
      while (i < line.size() && IsLabelNameChar(line[i])) ++i;
      const std::string label(line.substr(start, i - start));
      if (label.empty() || !IsLabelNameStart(label[0])) {
        Report(line_no, "invalid label name in '" + sample->name + "'");
        return false;
      }
      if (i >= line.size() || line[i] != '=') {
        Report(line_no, "expected '=' after label '" + label + "'");
        return false;
      }
      ++i;
      if (i >= line.size() || line[i] != '"') {
        Report(line_no, "label '" + label + "' value is not quoted");
        return false;
      }
      ++i;
      std::string value;
      bool terminated = false;
      for (; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '"') {
          terminated = true;
          ++i;
          break;
        }
        if (c == '\\') {
          if (i + 1 >= line.size() ||
              (line[i + 1] != '\\' && line[i + 1] != '"' &&
               line[i + 1] != 'n')) {
            Report(line_no, "illegal escape in label '" + label +
                                "' — only \\\\, \\\" and \\n are defined");
            return false;
          }
          value.push_back(line[i + 1] == 'n' ? '\n' : line[i + 1]);
          ++i;
          continue;
        }
        value.push_back(c);
      }
      if (!terminated) {
        Report(line_no, "unterminated value for label '" + label + "'");
        return false;
      }
      if (sample->labels.count(label) != 0) {
        Report(line_no, "label '" + label + "' repeated on '" +
                            sample->name + "'");
        return false;
      }
      sample->labels[label] = std::move(value);
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') break;
      Report(line_no, "expected ',' or '}' in the label set of '" +
                          sample->name + "'");
      return false;
    }
    *pos = i + 1;  // Past '}'.
    return true;
  }

  /// Resolves the owning family (histogram/summary series attach to
  /// their base family), enforces contiguous grouping, and accumulates
  /// histogram series for the end-of-document checks.
  void Record(const Sample& sample, int line_no) {
    std::string base = sample.name;
    std::string suffix;
    for (const std::string_view candidate : {"_bucket", "_sum", "_count"}) {
      if (base.size() > candidate.size() &&
          base.compare(base.size() - candidate.size(), candidate.size(),
                       candidate) == 0) {
        const std::string stripped =
            base.substr(0, base.size() - candidate.size());
        const auto it = families_.find(stripped);
        if (it != families_.end() && it->second.has_type &&
            (it->second.type == "histogram" || it->second.type == "summary")) {
          base = stripped;
          suffix = std::string(candidate);
        }
        break;
      }
    }
    Family& family = families_[base];
    if (family.closed) {
      Report(line_no, "samples of '" + base +
                          "' are not contiguous — all lines of one family "
                          "must form a single group");
    }
    if (!family.has_samples) family.first_sample_line = line_no;
    family.has_samples = true;
    // Close every other family that already has samples.
    for (auto& [name, other] : families_) {
      if (name != base && other.has_samples) other.closed = true;
    }
    if (family.type != "histogram") return;
    if (suffix == "_bucket") {
      const auto le = sample.labels.find("le");
      if (le == sample.labels.end()) {
        Report(line_no, "histogram series '" + sample.name +
                            "' is missing the 'le' label");
        return;
      }
      family.buckets.emplace_back(le->second, sample.value);
    } else if (suffix == "_sum") {
      family.sum = sample.value;
    } else if (suffix == "_count") {
      family.count = sample.value;
    } else if (sample.name == base) {
      Report(line_no, "histogram '" + base +
                          "' has a bare sample — histograms expose only "
                          "_bucket, _sum and _count series");
    }
  }

  void FinishFamilies() {
    for (const auto& [name, family] : families_) {
      // Metadata-only families are legal; only histograms with samples
      // carry cross-series invariants worth checking here.
      if (family.type != "histogram" || !family.has_samples) continue;
      const int line = family.first_sample_line;
      if (family.buckets.empty()) {
        Report(line, "histogram '" + name + "' has no _bucket series");
        continue;
      }
      double prev = -1;
      bool cumulative = true;
      for (const auto& [le, value] : family.buckets) {
        if (!ParseValue(le).has_value()) {
          Report(line, "histogram '" + name + "' bucket le=\"" + le +
                           "\" is not a valid float");
        }
        if (value < prev) cumulative = false;
        prev = value;
      }
      if (!cumulative) {
        Report(line, "histogram '" + name +
                         "' buckets are not cumulative non-decreasing");
      }
      if (family.buckets.back().first != "+Inf") {
        Report(line, "histogram '" + name +
                         "' does not end with an le=\"+Inf\" bucket");
      }
      if (!family.sum.has_value()) {
        Report(line, "histogram '" + name + "' is missing its _sum series");
      }
      if (!family.count.has_value()) {
        Report(line, "histogram '" + name + "' is missing its _count series");
      } else if (family.buckets.back().first == "+Inf" &&
                 *family.count != family.buckets.back().second) {
        Report(line, "histogram '" + name +
                         "' _count disagrees with its +Inf bucket");
      }
    }
  }

  std::map<std::string, Family> families_;
  std::vector<Issue> issues_;
  int total_samples_ = 0;
};

}  // namespace

std::vector<Issue> ValidateExposition(std::string_view text) {
  return Validator().Run(text);
}

}  // namespace adaskip_promcheck
