#ifndef ADASKIP_TOOLS_PROMCHECK_PROMCHECK_H_
#define ADASKIP_TOOLS_PROMCHECK_PROMCHECK_H_

#include <string>
#include <string_view>
#include <vector>

/// promcheck: a dependency-free validator for the Prometheus text
/// exposition format (version 0.0.4), sized for CI. The bench-smoke job
/// scrapes the live /metrics endpoint of a running telemetry server and
/// feeds the body through this checker, so a rendering regression in
/// MetricsRegistry::RenderPrometheus fails the workflow instead of
/// silently producing a page real scrapers reject.
///
/// Checked properties:
///   - every line is a comment, blank, `# HELP`/`# TYPE` metadata, or a
///     well-formed sample `name{labels} value [timestamp]`
///   - metric and label names use the legal charsets; label values are
///     quoted with only the \\, \", \n escapes; sample values parse as
///     Prometheus floats (including +Inf/-Inf/NaN)
///   - `# TYPE` names one of counter/gauge/histogram/summary/untyped,
///     appears before the family's samples, and at most once (same for
///     `# HELP`)
///   - all samples of a family form one contiguous group
///   - histogram families carry `_bucket` series with an `le` label,
///     cumulative non-decreasing bucket values ending in `le="+Inf"`,
///     plus `_sum` and `_count` with count equal to the +Inf bucket
namespace adaskip_promcheck {

struct Issue {
  int line = 0;  // 1-based; 0 for whole-document issues.
  std::string message;
};

/// Validates one exposition document. Returns every issue found (empty
/// means valid). A document with no samples at all is reported: CI
/// scrapes an instrumented process, so an empty page means the registry
/// was not wired up.
std::vector<Issue> ValidateExposition(std::string_view text);

}  // namespace adaskip_promcheck

#endif  // ADASKIP_TOOLS_PROMCHECK_PROMCHECK_H_
