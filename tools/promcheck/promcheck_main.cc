// promcheck — validates Prometheus text exposition documents. Usage:
//
//   promcheck <file>...        validate each file
//   promcheck                  validate stdin
//
// Prints `file:line: message` per issue and exits non-zero if any input
// is invalid, so a CI step can pipe a scraped /metrics body straight
// through it.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "promcheck.h"

namespace {

int Validate(const std::string& label, const std::string& body) {
  const auto issues = adaskip_promcheck::ValidateExposition(body);
  for (const adaskip_promcheck::Issue& issue : issues) {
    std::cerr << label << ":" << issue.line << ": " << issue.message << "\n";
  }
  return issues.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int failures = 0;
  if (argc < 2) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    failures += Validate("<stdin>", buffer.str());
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in.good()) {
      std::cerr << argv[i] << ": cannot open\n";
      ++failures;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    failures += Validate(argv[i], buffer.str());
  }
  if (failures == 0) std::cerr << "promcheck: OK\n";
  return failures == 0 ? 0 : 1;
}
