// promcheck self-tests: the validator must accept the renderer's real
// output shape and reject the classic text-format mistakes CI exists to
// catch (broken histograms, bad names, interleaved families).

#include "promcheck.h"

#include <gtest/gtest.h>

#include <string>

namespace adaskip_promcheck {
namespace {

int CountContaining(const std::vector<Issue>& issues,
                    std::string_view needle) {
  int n = 0;
  for (const Issue& issue : issues) {
    if (issue.message.find(needle) != std::string::npos) ++n;
  }
  return n;
}

constexpr char kValid[] =
    "# HELP adaskip_server_submitted Queries admitted\n"
    "# TYPE adaskip_server_submitted counter\n"
    "adaskip_server_submitted 128\n"
    "# HELP adaskip_server_queue_depth Queue depth\n"
    "# TYPE adaskip_server_queue_depth gauge\n"
    "adaskip_server_queue_depth 3\n"
    "# HELP adaskip_exec_query_nanos Latency\n"
    "# TYPE adaskip_exec_query_nanos histogram\n"
    "adaskip_exec_query_nanos_bucket{le=\"0\"} 0\n"
    "adaskip_exec_query_nanos_bucket{le=\"1023\"} 5\n"
    "adaskip_exec_query_nanos_bucket{le=\"+Inf\"} 9\n"
    "adaskip_exec_query_nanos_sum 81234\n"
    "adaskip_exec_query_nanos_count 9\n";

TEST(PromcheckTest, AcceptsRenderedShape) {
  EXPECT_TRUE(ValidateExposition(kValid).empty());
}

TEST(PromcheckTest, AcceptsLabelsEscapesAndSpecialValues) {
  const auto issues = ValidateExposition(
      "# TYPE up gauge\n"
      "up{instance=\"host \\\"a\\\"\",job=\"x\\ny\"} 1 1699999999000\n"
      "# TYPE temp gauge\n"
      "temp{site=\"lab\"} -Inf\n"
      "temp{site=\"roof\"} NaN\n");
  EXPECT_TRUE(issues.empty());
}

TEST(PromcheckTest, RejectsEmptyDocument) {
  const auto issues = ValidateExposition("");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(CountContaining(issues, "no samples"), 1);
}

TEST(PromcheckTest, RejectsBadNamesAndValues) {
  const auto issues = ValidateExposition(
      "2bad_name 1\n"
      "fine{9lbl=\"x\"} 1\n"
      "also_fine not_a_number\n");
  EXPECT_EQ(CountContaining(issues, "valid metric name"), 1);
  EXPECT_EQ(CountContaining(issues, "invalid label name"), 1);
  EXPECT_EQ(CountContaining(issues, "not a valid Prometheus float"), 1);
}

TEST(PromcheckTest, RejectsUnknownTypeAndDuplicateMetadata) {
  const auto issues = ValidateExposition(
      "# TYPE foo widget\n"
      "# TYPE foo counter\n"
      "# HELP foo once\n"
      "# HELP foo twice\n"
      "foo 1\n");
  EXPECT_EQ(CountContaining(issues, "unknown type"), 1);
  EXPECT_EQ(CountContaining(issues, "duplicate # TYPE"), 1);
  EXPECT_EQ(CountContaining(issues, "duplicate # HELP"), 1);
}

TEST(PromcheckTest, RejectsTypeAfterSamples) {
  const auto issues = ValidateExposition(
      "foo 1\n"
      "# TYPE foo counter\n");
  EXPECT_EQ(CountContaining(issues, "after the family's samples"), 1);
}

TEST(PromcheckTest, RejectsInterleavedFamilies) {
  const auto issues = ValidateExposition(
      "foo 1\n"
      "bar 1\n"
      "foo 2\n");
  EXPECT_EQ(CountContaining(issues, "not contiguous"), 1);
}

TEST(PromcheckTest, RejectsBrokenHistograms) {
  // Non-cumulative buckets, no +Inf, count mismatch, and a missing sum.
  const auto issues = ValidateExposition(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\n"
      "h_bucket{le=\"2\"} 3\n"
      "h_count 4\n");
  EXPECT_EQ(CountContaining(issues, "not cumulative"), 1);
  EXPECT_EQ(CountContaining(issues, "+Inf"), 1);
  EXPECT_EQ(CountContaining(issues, "missing its _sum"), 1);
}

TEST(PromcheckTest, RejectsCountBucketDisagreement) {
  const auto issues = ValidateExposition(
      "# TYPE h histogram\n"
      "h_bucket{le=\"+Inf\"} 9\n"
      "h_sum 10\n"
      "h_count 4\n");
  EXPECT_EQ(CountContaining(issues, "_count disagrees"), 1);
}

TEST(PromcheckTest, RejectsBucketWithoutLe) {
  const auto issues = ValidateExposition(
      "# TYPE h histogram\n"
      "h_bucket{eq=\"1\"} 1\n");
  EXPECT_EQ(CountContaining(issues, "missing the 'le' label"), 1);
}

TEST(PromcheckTest, SuffixedNamesWithoutHistogramTypeAreOrdinary) {
  // _sum/_count/_bucket only fold into a family that is declared a
  // histogram (or summary); otherwise they are independent metrics.
  const auto issues = ValidateExposition(
      "# TYPE rows_sum counter\n"
      "rows_sum 10\n");
  EXPECT_TRUE(issues.empty());
}

}  // namespace
}  // namespace adaskip_promcheck
